/**
 * @file
 * The discrete-event simulation driver.
 *
 * A Simulation owns the virtual clock and the pending-event set, spawns
 * root coroutine tasks and provides the fundamental awaitable (delay).
 * All coroutine resumptions are funnelled through the event queue so
 * same-instant wakeups fire in a deterministic order.
 */

#ifndef MOLECULE_SIM_SIMULATION_HH
#define MOLECULE_SIM_SIMULATION_HH

#include <coroutine>
#include <memory>

#include "sim/analysis.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace molecule::sim {

/**
 * Virtual-time executor for coroutine tasks.
 *
 * Typical use:
 * @code
 *   Simulation sim;
 *   sim.spawn(clientLoop(sim, ...));
 *   sim.run();                       // until no events remain
 * @endcode
 */
class Simulation
{
  public:
    /** @param seed seeds the simulation-owned RNG (determinism knob). */
    explicit Simulation(std::uint64_t seed = 42) : rng_(seed) {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** The simulation-owned deterministic RNG. */
    Rng &rng() { return rng_; }

    /** Schedule a callback @p after from now; returns a cancel id. */
    EventId
    schedule(SimTime after, InlineCallback fn)
    {
        const EventId id = events_.schedule(now_ + after, std::move(fn));
        noteScheduled();
        return id;
    }

    /** Cancel an event scheduled via schedule(). */
    bool
    cancel(EventId id)
    {
#if MOLECULE_DETERMINISM_ANALYSIS
        if (log_) {
            const std::uint64_t seq = events_.seqOfEvent(id);
            const bool cancelled = events_.cancel(id);
            if (cancelled && seq != 0)
                log_->dropScheduled(seq);
            return cancelled;
        }
#endif
        return events_.cancel(id);
    }

    /** Start a root task; its frame self-destroys when it completes. */
    void
    spawn(Task<> task)
    {
        task.detachAndStart();
    }

    /** Awaitable that suspends the caller for @p amount of sim time. */
    auto
    delay(SimTime amount)
    {
        struct Awaiter
        {
            Simulation *sim;
            SimTime amount;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                // Fast path: the handle is stored directly in the
                // event slot — no closure, no allocation.
                sim->events_.schedule(sim->now_ + amount, h);
                sim->noteScheduled();
            }

            void await_resume() const noexcept {}
        };
        MOLECULE_ASSERT(amount >= SimTime(0),
                        "negative delay %lld ns",
                        static_cast<long long>(amount.raw()));
        return Awaiter{this, amount};
    }

    /** Resume @p h at the current instant, ordered behind pending work. */
    void
    scheduleResume(std::coroutine_handle<> h)
    {
        events_.schedule(now_, h);
        noteScheduled();
    }

    /** Run until the event set drains. @return final simulated time. */
    SimTime run();

    /** Run until the clock would pass @p deadline (absolute). */
    SimTime runUntil(SimTime deadline);

    /** Fire exactly one event if present. @retval false queue was empty. */
    bool step();

    /** Number of pending events (diagnostics). */
    std::size_t pendingEvents() const { return events_.size(); }

#if MOLECULE_DETERMINISM_ANALYSIS
    /** @name Sim-time conflict detector (see sim/analysis.hh) */
    ///@{

    /**
     * Start recording Tracked<T> accesses into a fresh AccessLog.
     * Events already pending when tracking starts are treated as
     * same-instant scheduled (never reported).
     */
    void
    enableConflictTracking(
        std::size_t capacity = analysis::AccessLog::kDefaultCapacity)
    {
        log_ = std::make_unique<analysis::AccessLog>(capacity);
    }

    void stopConflictTracking() { log_.reset(); }

    /** The access log, or nullptr when tracking is off. */
    analysis::AccessLog *accessLog() { return log_.get(); }
    ///@}
#endif

  private:
    /** Tell the detector about the event the queue just accepted. */
    void
    noteScheduled()
    {
#if MOLECULE_DETERMINISM_ANALYSIS
        if (log_)
            log_->noteScheduled(events_.lastScheduledSeq(), now_.raw());
#endif
    }

    EventQueue events_;
    SimTime now_{0};
    Rng rng_;
#if MOLECULE_DETERMINISM_ANALYSIS
    std::unique_ptr<analysis::AccessLog> log_;
#endif
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_SIMULATION_HH
