/**
 * @file
 * Hierarchical calendar wheel parking far-out events for the DES
 * kernel.
 *
 * Three levels of 64 buckets; a level-l bucket spans one *window* of
 * 2^(16+6l) ns, so the wheel covers 65.5 us windows over a 4.19 ms
 * span (level 0), 4.19 ms windows over 268 ms (level 1) and 268 ms
 * windows over a ~17.2 s horizon (level 2). Events past the horizon,
 * or earlier than the drained frontier, are refused and stay in the
 * caller's heap.
 *
 * The wheel never decides firing order. The EventQueue empties whole
 * buckets: a level-0 bucket is drained into a sorted ready-run when
 * the simulation reaches its window, and a coarser bucket is
 * re-inserted one level finer (classic cascade). Insert, cancel
 * (caller-side lazy) and bucket location are O(1); per-level occupancy
 * bitmaps make locating the earliest occupied window two ctz
 * instructions per level.
 *
 * Node storage is arena-backed block chains recycled through a free
 * list, so steady-state operation performs no heap allocation.
 */

#ifndef MOLECULE_SIM_TIMER_WHEEL_HH
#define MOLECULE_SIM_TIMER_WHEEL_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/arena.hh"

namespace molecule::sim {

/** Priority node: POD, 24 bytes, identifies one scheduled event. */
struct EventNode
{
    std::int64_t when;
    std::uint64_t seq;
    std::uint32_t slot;
};

class TimerWheel
{
  public:
    static constexpr int kLevels = 3;
    static constexpr int kBucketShift = 6;
    static constexpr std::size_t kBuckets = std::size_t(1)
                                            << kBucketShift;
    /** Finest window: 2^16 ns = 65.5 us per level-0 bucket. */
    static constexpr int kWindowShift = 16;
    /** Sentinel "no occupied window" timestamp. */
    static constexpr std::int64_t kNoWindow =
        std::int64_t(0x7fffffffffffffff);

    /** Bit shift from timestamp to level-l window index. */
    static constexpr int
    shift(int level)
    {
        return kWindowShift + kBucketShift * level;
    }

    /** Earliest occupied window, as located by locate(). */
    struct Earliest
    {
        int level;
        std::int64_t idx; ///< window index (timestamp >> shift(level))
        std::int64_t ws;  ///< window start timestamp (idx << shift)
    };

    explicit TimerWheel(Arena &arena) : arena_(&arena) {}

    TimerWheel(const TimerWheel &) = delete;
    TimerWheel &operator=(const TimerWheel &) = delete;

    bool empty() const { return entries_ == 0; }

    /** Parked nodes, live + stale (diagnostics). */
    std::size_t entries() const { return entries_; }

    /** Drained frontier: inserts below it are refused. */
    std::int64_t base() const { return base_; }

    /**
     * Lower bound on the start of the earliest occupied window —
     * O(1), maintained conservatively. A head event strictly earlier
     * than hint() can fire without scanning any bitmap. Meaningful
     * only while !empty().
     */
    std::int64_t hint() const { return hint_; }

    /**
     * Park @p n.
     * @retval false @p n.when is before the drained frontier or past
     *               the wheel horizon; the caller keeps it (heap).
     */
    bool
    insert(const EventNode &n)
    {
        if (n.when < base_)
            return false;
        int level;
        // base_ stays aligned to the finest window (advanceBase), so
        // the level-0 test reduces to a span check on the delta.
        if (std::uint64_t(n.when - base_) <
            (std::uint64_t(1) << (kWindowShift + kBucketShift))) {
            level = 0;
        } else if ((n.when >> shift(1)) - (base_ >> shift(1)) <
                   std::int64_t(kBuckets)) {
            level = 1;
        } else if ((n.when >> shift(2)) - (base_ >> shift(2)) <
                   std::int64_t(kBuckets)) {
            level = 2;
        } else {
            return false;
        }
        const std::int64_t idx = n.when >> shift(level);
        const std::int64_t ws = idx << shift(level);
        if (ws < hint_)
            hint_ = ws;
        bitmap_[level] |= std::uint64_t(1) << (idx & (kBuckets - 1));
        append(buckets_[level][idx & (kBuckets - 1)], n);
        ++entries_;
        return true;
    }

    /**
     * Locate the earliest occupied window exactly (ties prefer the
     * coarsest level, whose bucket must cascade before the finer one
     * with the same start can drain). Refreshes hint(). Requires
     * !empty().
     */
    Earliest
    locate()
    {
        Earliest best{-1, 0, kNoWindow};
        for (int l = kLevels; l-- > 0;) {
            const std::uint64_t bits = bitmap_[l];
            if (bits == 0)
                continue;
            const int s = shift(l);
            const std::int64_t b = base_ >> s;
            const int rot = int(b & (kBuckets - 1));
            // Rotation invariant: occupied indexes lie in
            // [b, b + 64), so the earliest is the first bit at or
            // after the base's position, else the first wrapped bit.
            const std::uint64_t hi = bits & (~std::uint64_t(0) << rot);
            const std::int64_t idx =
                hi != 0 ? (b - rot) + std::countr_zero(hi)
                        : (b - rot) + std::int64_t(kBuckets) +
                              std::countr_zero(bits);
            const std::int64_t ws = idx << s;
            if (ws < best.ws)
                best = Earliest{l, idx, ws};
        }
        hint_ = best.ws;
        return best;
    }

    /**
     * Empty the bucket owning window @p at, appending its nodes to
     * @p out in insertion (sequence) order; blocks return to the free
     * list. The caller sorts/filters and advances the frontier.
     * @return nodes appended.
     */
    std::size_t
    drainBucket(const Earliest &at, std::vector<EventNode> &out)
    {
        Bucket &b = buckets_[at.level][at.idx & (kBuckets - 1)];
        std::size_t n = 0;
        Block *blk = b.head;
        while (blk != nullptr) {
            for (std::uint32_t i = 0; i < blk->count; ++i)
                out.push_back(blk->nodes[i]);
            n += blk->count;
            Block *next = blk->next;
            recycle(blk);
            blk = next;
        }
        b.head = b.tail = nullptr;
        bitmap_[at.level] &=
            ~(std::uint64_t(1) << (at.idx & (kBuckets - 1)));
        entries_ -= n;
        if (entries_ == 0)
            hint_ = kNoWindow;
        return n;
    }

    /**
     * Advance the drained frontier. @p t must be aligned to the
     * finest window (callers pass window starts/ends, which are).
     * Inserts below the frontier are refused from now on.
     */
    void
    advanceBase(std::int64_t t)
    {
        if (t > base_)
            base_ = t;
    }

    /** Caller-certified lower bound on every remaining window. */
    void
    raiseHint(std::int64_t ws)
    {
        if (hint_ < ws)
            hint_ = ws;
    }

    /**
     * Drop every node for which @p isLive is false, compacting bucket
     * chains in place (cancel-churn memory bound).
     * @return nodes dropped.
     */
    template <typename IsLive>
    std::size_t
    sweep(IsLive &&isLive)
    {
        std::size_t dropped = 0;
        for (int l = 0; l < kLevels; ++l) {
            std::uint64_t bits = bitmap_[l];
            while (bits != 0) {
                const int bit = std::countr_zero(bits);
                bits &= bits - 1;
                Bucket &b = buckets_[l][bit];
                dropped += sweepBucket(b, isLive);
                if (b.head == nullptr)
                    bitmap_[l] &= ~(std::uint64_t(1) << bit);
            }
        }
        entries_ -= dropped;
        if (entries_ == 0)
            hint_ = kNoWindow;
        return dropped;
    }

  private:
    /** Chain link of parked nodes; 256-byte arena blocks. */
    struct Block
    {
        static constexpr std::uint32_t kCap = 9;
        EventNode nodes[kCap];
        Block *next = nullptr;
        std::uint32_t count = 0;
    };

    struct Bucket
    {
        Block *head = nullptr;
        Block *tail = nullptr;
    };

    Block *
    takeBlock()
    {
        if (freeBlocks_ != nullptr) {
            Block *b = freeBlocks_;
            freeBlocks_ = b->next;
            b->next = nullptr;
            b->count = 0;
            return b;
        }
        return arena_->create<Block>();
    }

    void
    recycle(Block *blk)
    {
        blk->count = 0;
        blk->next = freeBlocks_;
        freeBlocks_ = blk;
    }

    void
    append(Bucket &b, const EventNode &n)
    {
        Block *t = b.tail;
        if (t == nullptr || t->count == Block::kCap) {
            Block *blk = takeBlock();
            if (t != nullptr)
                t->next = blk;
            else
                b.head = blk;
            b.tail = blk;
            t = blk;
        }
        t->nodes[t->count++] = n;
    }

    template <typename IsLive>
    std::size_t
    sweepBucket(Bucket &b, IsLive &isLive)
    {
        Block *dst = b.head;
        std::uint32_t dstN = 0;
        std::size_t kept = 0;
        std::size_t total = 0;
        for (Block *src = b.head; src != nullptr; src = src->next) {
            for (std::uint32_t i = 0; i < src->count; ++i) {
                const EventNode n = src->nodes[i];
                ++total;
                if (!isLive(n))
                    continue;
                if (dstN == Block::kCap) {
                    dst->count = dstN;
                    dst = dst->next;
                    dstN = 0;
                }
                dst->nodes[dstN++] = n;
                ++kept;
            }
        }
        if (kept == 0) {
            Block *blk = b.head;
            while (blk != nullptr) {
                Block *next = blk->next;
                recycle(blk);
                blk = next;
            }
            b.head = b.tail = nullptr;
            return total;
        }
        dst->count = dstN;
        Block *surplus = dst->next;
        dst->next = nullptr;
        b.tail = dst;
        while (surplus != nullptr) {
            Block *next = surplus->next;
            recycle(surplus);
            surplus = next;
        }
        return total - kept;
    }

    Arena *arena_;
    Bucket buckets_[kLevels][kBuckets]{};
    std::uint64_t bitmap_[kLevels]{};
    Block *freeBlocks_ = nullptr;
    /** Aligned to the finest window; monotone. */
    std::int64_t base_ = 0;
    std::int64_t hint_ = kNoWindow;
    std::size_t entries_ = 0;
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_TIMER_WHEEL_HH
