/**
 * @file
 * Small-buffer-optimized one-shot callable for the event queue.
 *
 * The DES hot path schedules millions of callbacks per simulated
 * second, and the overwhelmingly dominant case is "resume this
 * coroutine". std::function<void()> pays for type erasure with a
 * potential heap allocation and a relatively fat move; InlineCallback
 * stores any callable up to kInlineBytes (and any coroutine handle)
 * directly in the event-slab slot, so the schedule → fire lifecycle of
 * the common case performs zero allocations.
 *
 * Move-only, one-shot by convention: the queue moves the callback out
 * of its slab slot before invoking it, and the destructor releases
 * whatever the callable captured.
 */

#ifndef MOLECULE_SIM_CALLBACK_HH
#define MOLECULE_SIM_CALLBACK_HH

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace molecule::sim {

/**
 * Type-erased void() callable with inline storage.
 *
 * Three representations, chosen at construction:
 *  - a bare std::coroutine_handle<> (the fast path: one pointer,
 *    trivial relocation, no destructor);
 *  - any callable whose object fits kInlineBytes and is nothrow
 *    move-constructible, constructed in place;
 *  - a heap-allocated callable otherwise (rare; capture-heavy lambdas
 *    outside the hot path).
 */
class InlineCallback
{
  public:
    /** Inline storage size; sized for the repo's largest hot lambda. */
    static constexpr std::size_t kInlineBytes = 48;

    InlineCallback() = default;

    /** Fast path: schedule a coroutine resumption (no allocation). */
    InlineCallback(std::coroutine_handle<> h) noexcept : ops_(&kCoroOps)
    {
        ::new (static_cast<void *>(buf_)) void *(h.address());
    }

    /** Erase an arbitrary callable; inline when it fits, else heap. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  !std::is_same_v<std::decay_t<F>,
                                  std::coroutine_handle<>> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&fn)
    {
        emplace(std::forward<F>(fn));
    }

    /**
     * Replace the held callable, constructing the new one directly in
     * the inline buffer — the schedule hot path uses this to build the
     * callable straight inside its event-slab slot instead of paying a
     * construct-then-relocate round trip.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  !std::is_same_v<std::decay_t<F>,
                                  std::coroutine_handle<>> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    void
    emplace(F &&fn)
    {
        reset();
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &heapOps<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept
        : ops_(std::exchange(other.ops_, nullptr))
    {
        if (ops_)
            relocateFrom(other.buf_);
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = std::exchange(other.ops_, nullptr);
            if (ops_)
                relocateFrom(other.buf_);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke the callable. Must not be empty. */
    void
    operator()()
    {
        MOLECULE_ASSERT(ops_, "invoking an empty InlineCallback");
        ops_->invoke(buf_);
    }

    /** True when the callable lives on the heap (diagnostics/tests). */
    bool usesHeap() const noexcept { return ops_ && ops_->heap; }

    /**
     * Replace the held callable with a coroutine resumption, fully
     * inline (no type-erased relocate on the scheduling hot path).
     */
    void
    assignCoroutine(std::coroutine_handle<> h) noexcept
    {
        reset();
        ::new (static_cast<void *>(buf_)) void *(h.address());
        ops_ = &kCoroOps;
    }

    /** Destroy the held callable, leaving the callback empty. */
    void
    reset() noexcept
    {
        if (ops_) {
            if (ops_->destroy)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    /**
     * Per-type vtable. relocate/destroy are null for trivially
     * copyable/destructible payloads (coroutine handles, reference
     * captures — the hot cases): the caller then uses a branch-free
     * inline byte copy / no-op instead of an indirect call.
     */
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct into @p dst from @p src, destroying src;
         * null means "bitwise copy of the inline buffer suffices". */
        void (*relocate)(void *dst, void *src) noexcept;
        /** Null when destruction is a no-op. */
        void (*destroy)(void *storage) noexcept;
        bool heap;
    };

    /** ops_ already taken from the source; move its payload over. */
    void
    relocateFrom(void *src) noexcept
    {
        if (ops_->relocate)
            ops_->relocate(buf_, src);
        else
            std::memcpy(buf_, src, kInlineBytes);
    }

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    static void
    coroInvoke(void *storage)
    {
        std::coroutine_handle<>::from_address(
            *static_cast<void **>(storage))
            .resume();
    }

    static constexpr Ops kCoroOps{&coroInvoke, nullptr, nullptr, false};

    template <typename Fn>
    static void
    inlineInvoke(void *storage)
    {
        (*std::launder(reinterpret_cast<Fn *>(storage)))();
    }

    template <typename Fn>
    static void
    inlineRelocate(void *dst, void *src) noexcept
    {
        Fn *from = std::launder(reinterpret_cast<Fn *>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
    }

    template <typename Fn>
    static void
    inlineDestroy(void *storage) noexcept
    {
        std::launder(reinterpret_cast<Fn *>(storage))->~Fn();
    }

    template <typename Fn>
    static void
    heapInvoke(void *storage)
    {
        (**std::launder(reinterpret_cast<Fn **>(storage)))();
    }

    template <typename Fn>
    static void
    heapDestroy(void *storage) noexcept
    {
        delete *std::launder(reinterpret_cast<Fn **>(storage));
    }

    template <typename Fn>
    static constexpr Ops inlineOps{
        &inlineInvoke<Fn>,
        std::is_trivially_copyable_v<Fn> ? nullptr
                                         : &inlineRelocate<Fn>,
        std::is_trivially_destructible_v<Fn> ? nullptr
                                             : &inlineDestroy<Fn>,
        false};

    template <typename Fn>
    static constexpr Ops heapOps{&heapInvoke<Fn>, nullptr,
                                 &heapDestroy<Fn>, true};

    alignas(std::max_align_t) std::byte buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_CALLBACK_HH
