#include "sim/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace molecule::sim {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::render() const
{
    // Column widths over header + all rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream out;
    out << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size())
                out << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace molecule::sim
