#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace molecule::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    MOLECULE_ASSERT(lo <= hi, "uniformInt: lo > hi");
    const std::uint64_t span = std::uint64_t(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return std::int64_t(next());
    // Rejection sampling removes modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v = 0;
    do {
        v = next();
    } while (v >= limit);
    return lo + std::int64_t(v % span);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double mean)
{
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return -mean * std::log(u);
}

double
Rng::jitter(double rel)
{
    if (rel <= 0.0)
        return 1.0;
    const double f = normal(1.0, rel);
    // Clamp at 3 sigma-ish to keep tails physical (latency can't go
    // negative, and pathological outliers would swamp percentiles).
    const double lo = std::max(0.01, 1.0 - 3.0 * rel);
    const double hi = 1.0 + 3.0 * rel;
    return std::min(hi, std::max(lo, f));
}

} // namespace molecule::sim
