/**
 * @file
 * Status and error reporting helpers in the gem5 spirit.
 *
 * panic()  - an internal invariant was violated (a Molecule bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something works but is suspicious.
 * inform() - plain status output, gated by verbosity.
 */

#ifndef MOLECULE_SIM_LOGGING_HH
#define MOLECULE_SIM_LOGGING_HH

#include <cstdarg>
#include <cstddef>
#include <string>

namespace molecule::sim {

/** Verbosity levels for inform(); warnings are always printed. */
enum class LogLevel { Quiet = 0, Normal = 1, Verbose = 2 };

/** Set the global log verbosity (default: Quiet for tests/benches). */
void setLogLevel(LogLevel level);

LogLevel logLevel();

/**
 * Optional line-prefix hook: when set, every report line calls it to
 * render a prefix (e.g. the active trace/span ids from obs::) into
 * @p buf, returning the bytes written (0 = no prefix). A plain
 * function pointer — not std::function — per the determinism lint
 * rules for src/sim; implementations must be reentrant and cheap.
 */
using LogPrefixFn = std::size_t (*)(char *buf, std::size_t cap);

void setLogPrefixHook(LogPrefixFn fn);

/**
 * Report an internal invariant violation and abort.
 * Use when the condition can only arise from a simulator bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Use when the simulation cannot continue but the simulator is fine.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message when verbosity >= Normal. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Formatted assert: panics with a message when cond is false. */
#define MOLECULE_ASSERT(cond, ...)                                        \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::molecule::sim::panic("assertion '" #cond "' failed: "        \
                                   __VA_ARGS__);                           \
        }                                                                  \
    } while (0)

} // namespace molecule::sim

#endif // MOLECULE_SIM_LOGGING_HH
