/**
 * @file
 * Serializable open-loop workload descriptions.
 *
 * A TraceSpec is a *value*: everything the open-loop generator needs
 * to reproduce an invocation stream bit for bit — arrival process,
 * function catalog, popularity skew, tenant mix and the seed. Specs
 * serialize to a line-oriented text form that parses back exactly
 * (the same contract as fault::InjectionPlan), so a trace referenced
 * in a bug report or pinned in CI is one short string, never a file
 * of a million timestamps.
 *
 * Determinism rules (DESIGN.md §8):
 *  - The generator owns its RNG, seeded from the spec at construction.
 *    It never draws from a Simulation's RNG, so attaching a stream to
 *    a model changes nothing about the model's own random sequence.
 *  - The stream is a pure function of the spec: same spec => same
 *    arrivals, on any thread, serial or under sim::SweepRunner.
 *  - Arrival instants are generated in nanosecond sim time, never
 *    from wall clocks.
 */

#ifndef MOLECULE_LOAD_SPEC_HH
#define MOLECULE_LOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.hh"
#include "sim/time.hh"

namespace molecule::load {

/** Arrival-process families of the generator. */
enum class ArrivalKind : std::uint8_t {
    /** Homogeneous Poisson at `ratePerSecond`. */
    Poisson,
    /**
     * Two-state Markov-modulated Poisson process: a base state at
     * `ratePerSecond` and a burst state at `ratePerSecond *
     * burstFactor`, with exponentially distributed dwell times
     * (`meanDwellBase` / `meanDwellBurst`). Models flash crowds.
     */
    Mmpp,
    /**
     * Poisson with a sinusoidally modulated rate:
     * lambda(t) = ratePerSecond * (1 + diurnalAmplitude *
     * sin(2*pi*t / diurnalPeriod)). Models day/night traffic with the
     * "day" compressed to `diurnalPeriod` of sim time.
     */
    Diurnal,
};

const char *toString(ArrivalKind k);

/** One tenant of a multi-tenant mix. */
struct TenantSpec
{
    std::string name;
    /** Relative traffic share (normalized across tenants). */
    double share = 1.0;
    /** Zipf popularity exponent over the catalog (0 = uniform). */
    double zipfExponent = 1.1;
    /**
     * Salt for the tenant's private popularity ranking: two tenants
     * with different salts rank the shared catalog differently, so
     * "hot" functions differ per tenant (warm-affinity dispatch has
     * something to exploit).
     */
    std::uint64_t permuteSalt = 0;

    bool operator==(const TenantSpec &) const = default;
};

/**
 * A deterministic, serializable open-loop workload description.
 */
struct TraceSpec
{
    /** Seeds the generator-owned RNG. */
    std::uint64_t seed = 42;
    /** Stream horizon: arrivals occupy [0, duration). */
    sim::SimTime duration = sim::SimTime::seconds(60);
    /** Mean (base-state) arrival rate, invocations per second. */
    double ratePerSecond = 100.0;
    ArrivalKind arrival = ArrivalKind::Poisson;

    /** @name MMPP parameters (ArrivalKind::Mmpp) */
    ///@{
    double burstFactor = 8.0;
    sim::SimTime meanDwellBase = sim::SimTime::seconds(5);
    sim::SimTime meanDwellBurst = sim::SimTime::seconds(1);
    ///@}

    /** @name Diurnal parameters (ArrivalKind::Diurnal) */
    ///@{
    /** Modulation depth in [0, 1). */
    double diurnalAmplitude = 0.5;
    sim::SimTime diurnalPeriod = sim::SimTime::seconds(60);
    ///@}

    /** Function catalog the stream draws from (names are opaque). */
    std::vector<std::string> functions;
    /** Tenant mix; empty means one implicit tenant (share 1, Zipf
     * exponent 1.1, salt 0). */
    std::vector<TenantSpec> tenants;

    /** Expected arrival count (rate x duration; MMPP counts the
     * time-weighted burst uplift). Sizing hint, not a promise. */
    double expectedArrivals() const;

    /** Tenant labels the stream emits: [0, tenantCount()). The empty
     * mix still counts its one implicit tenant. */
    std::uint32_t tenantCount() const
    {
        return tenants.empty() ? 1u : std::uint32_t(tenants.size());
    }

    /** Display name of tenant @p i ("default" for the implicit
     * tenant, "t<i>" when the spec left the name blank). */
    std::string tenantName(std::uint32_t i) const;

    /**
     * Line-oriented text form, round-trippable through parse():
     *   trace-spec v1 seed=<n> rate=<f> arrival=<kind> dur=<ns>
     *         burst=<f> dwell-base=<ns> dwell-burst=<ns>
     *         diurnal-amp=<f> diurnal-period=<ns>
     *   fn name=<s>
     *   tenant name=<s> share=<f> zipf=<f> salt=<n>
     */
    std::string serialize() const;

    [[nodiscard]] static core::Expected<TraceSpec>
    parse(const std::string &text);

    bool operator==(const TraceSpec &) const = default;
};

} // namespace molecule::load

#endif // MOLECULE_LOAD_SPEC_HH
