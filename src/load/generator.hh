/**
 * @file
 * Seeded open-loop invocation-stream generator.
 *
 * Serverless traffic is open-loop: users fire requests on their own
 * schedule, indifferent to whether the platform keeps up — which is
 * exactly what saturates a cluster and exposes tail latency. The
 * OpenLoopGenerator turns a TraceSpec into such a stream: arrival
 * instants from the spec's arrival process (Poisson, two-state MMPP,
 * diurnal-modulated), a tenant drawn from the share-weighted mix, and
 * a function drawn from the tenant's Zipf-skewed private ranking of
 * the shared catalog (production traces — Shahrad et al., "Serverless
 * in the Wild" — show exactly this shape).
 *
 * The generator is streaming (O(1) memory per arrival) and a pure
 * function of its spec: no wall clock, no simulation RNG, the same
 * bit-exact stream serial or on any sim::SweepRunner thread. Replays
 * are free — construct another generator from the same spec.
 */

#ifndef MOLECULE_LOAD_GENERATOR_HH
#define MOLECULE_LOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "load/spec.hh"
#include "sim/random.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace molecule::sim {
class Simulation;
}

namespace molecule::load {

/** One invocation request of the stream. */
struct Arrival
{
    /** Absolute arrival instant (sim time since stream start). */
    sim::SimTime at;
    /** Index into TraceSpec::functions. */
    std::uint32_t fn = 0;
    /** Index into TraceSpec::tenants (0 for the implicit tenant). */
    std::uint32_t tenant = 0;

    bool operator==(const Arrival &) const = default;
};

/**
 * Streaming generator over one TraceSpec.
 */
class OpenLoopGenerator
{
  public:
    explicit OpenLoopGenerator(TraceSpec spec);

    const TraceSpec &spec() const { return spec_; }

    /**
     * Produce the next arrival. Arrival instants are non-decreasing
     * and confined to [0, spec().duration).
     * @retval false the stream is exhausted (past the horizon).
     */
    bool next(Arrival &out);

    /** Arrivals emitted so far. */
    std::uint64_t emitted() const { return emitted_; }

    /** Rewind to the start of the stream (bit-identical replay). */
    void reset();

    /** Materialize the remaining stream (tests and small traces). */
    std::vector<Arrival> generate();

  private:
    /** Sample the next inter-arrival gap from `clock_`. */
    sim::SimTime nextGap();

    /** Tenant index from the share-weighted CDF. */
    std::uint32_t sampleTenant();

    /** Function index from @p tenant's permuted Zipf ranking. */
    std::uint32_t sampleFunction(std::uint32_t tenant);

    void buildTables();

    TraceSpec spec_;
    sim::Rng rng_;
    sim::SimTime clock_{0};
    std::uint64_t emitted_ = 0;

    /** MMPP state: in-burst flag and the instant the dwell ends. */
    bool inBurst_ = false;
    sim::SimTime dwellEnd_{0};

    /** Share-weighted tenant CDF (empty for the implicit tenant). */
    std::vector<double> tenantCdf_;
    /** Per-tenant Zipf CDF over popularity ranks. */
    std::vector<std::vector<double>> fnCdf_;
    /** Per-tenant rank -> function-index permutation. */
    std::vector<std::vector<std::uint32_t>> fnRank_;
};

/**
 * Order-sensitive FNV-1a digest of the full stream of @p spec
 * (instant, function, tenant per arrival, then the count). The golden
 * tests pin these digests serial and under SweepRunner.
 */
std::uint64_t streamDigest(const TraceSpec &spec);

/** Consumer interface for replaying a stream inside a simulation. */
class ArrivalSink
{
  public:
    virtual ~ArrivalSink() = default;

    /** Called at sim-time `a.at` for every arrival, in stream order. */
    virtual void onArrival(const Arrival &a) = 0;
};

/**
 * Coroutine that replays @p gen against @p sink in simulated time:
 * one pending DES event at a time, so million-arrival streams cost
 * O(1) queue space. Stream time is rebased onto the clock at spawn
 * (boot work may already have advanced it); the sink sees absolute
 * arrival instants. Spawn it on @p sim; the caller keeps the
 * generator and sink alive until the simulation drains.
 */
sim::Task<> drive(sim::Simulation &sim, OpenLoopGenerator &gen,
                  ArrivalSink &sink);

} // namespace molecule::load

#endif // MOLECULE_LOAD_GENERATOR_HH
