#include "load/spec.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace molecule::load {

const char *
toString(ArrivalKind k)
{
    switch (k) {
    case ArrivalKind::Poisson:
        return "poisson";
    case ArrivalKind::Mmpp:
        return "mmpp";
    case ArrivalKind::Diurnal:
        return "diurnal";
    }
    return "?";
}

double
TraceSpec::expectedArrivals() const
{
    double rate = ratePerSecond;
    if (arrival == ArrivalKind::Mmpp) {
        // Time-weighted mean of the two state rates.
        const double base = meanDwellBase.toSeconds();
        const double burst = meanDwellBurst.toSeconds();
        if (base + burst > 0.0)
            rate = ratePerSecond * (base + burstFactor * burst) /
                   (base + burst);
    }
    return rate * duration.toSeconds();
}

std::string
TraceSpec::tenantName(std::uint32_t i) const
{
    if (tenants.empty())
        return "default";
    const std::string &name = tenants.at(i).name;
    if (!name.empty())
        return name;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "t%u", i);
    return buf;
}

namespace {

/** Shortest-exact double form (%.17g round-trips IEEE doubles). */
std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Parse "key=value"; @retval false when no '=' is present. */
bool
splitKv(const std::string &tok, std::string &key, std::string &val)
{
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
        return false;
    key = tok.substr(0, eq);
    val = tok.substr(eq + 1);
    return true;
}

core::Expected<ArrivalKind>
parseKind(const std::string &s)
{
    for (ArrivalKind k : {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                          ArrivalKind::Diurnal}) {
        if (s == toString(k))
            return k;
    }
    return core::Error(core::Errc::InvalidArgument,
                       "unknown arrival kind '" + s + "'");
}

} // namespace

std::string
TraceSpec::serialize() const
{
    std::ostringstream out;
    out << "trace-spec v1 seed=" << seed
        << " rate=" << fmtDouble(ratePerSecond)
        << " arrival=" << toString(arrival) << " dur=" << duration.raw()
        << " burst=" << fmtDouble(burstFactor)
        << " dwell-base=" << meanDwellBase.raw()
        << " dwell-burst=" << meanDwellBurst.raw()
        << " diurnal-amp=" << fmtDouble(diurnalAmplitude)
        << " diurnal-period=" << diurnalPeriod.raw() << "\n";
    for (const auto &fn : functions)
        out << "fn name=" << fn << "\n";
    for (const auto &t : tenants)
        out << "tenant share=" << fmtDouble(t.share)
            << " zipf=" << fmtDouble(t.zipfExponent)
            << " salt=" << t.permuteSalt << " name=" << t.name << "\n";
    return out.str();
}

core::Expected<TraceSpec>
TraceSpec::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        return core::Error(core::Errc::InvalidArgument, "empty spec");

    std::istringstream header(line);
    std::string word;
    header >> word;
    std::string version;
    header >> version;
    if (word != "trace-spec" || version != "v1")
        return core::Error(core::Errc::InvalidArgument,
                           "bad spec header: " + line);

    TraceSpec spec;
    std::string key, val;
    while (header >> word) {
        if (!splitKv(word, key, val))
            return core::Error(core::Errc::InvalidArgument,
                               "bad token '" + word + "'");
        if (key == "seed") {
            spec.seed = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "rate") {
            spec.ratePerSecond = std::stod(val);
        } else if (key == "arrival") {
            auto kind = parseKind(val);
            if (!kind.ok())
                return kind.error();
            spec.arrival = kind.value();
        } else if (key == "dur") {
            spec.duration = sim::SimTime(std::stoll(val));
        } else if (key == "burst") {
            spec.burstFactor = std::stod(val);
        } else if (key == "dwell-base") {
            spec.meanDwellBase = sim::SimTime(std::stoll(val));
        } else if (key == "dwell-burst") {
            spec.meanDwellBurst = sim::SimTime(std::stoll(val));
        } else if (key == "diurnal-amp") {
            spec.diurnalAmplitude = std::stod(val);
        } else if (key == "diurnal-period") {
            spec.diurnalPeriod = sim::SimTime(std::stoll(val));
        } else {
            return core::Error(core::Errc::InvalidArgument,
                               "unknown key '" + key + "'");
        }
    }

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream toks(line);
        toks >> word;
        if (word == "fn") {
            toks >> word;
            if (!splitKv(word, key, val) || key != "name" || val.empty())
                return core::Error(core::Errc::InvalidArgument,
                                   "bad fn line: " + line);
            spec.functions.push_back(val);
        } else if (word == "tenant") {
            TenantSpec t;
            bool named = false;
            while (toks >> word) {
                if (!splitKv(word, key, val))
                    return core::Error(core::Errc::InvalidArgument,
                                       "bad token '" + word + "'");
                if (key == "share") {
                    t.share = std::stod(val);
                } else if (key == "zipf") {
                    t.zipfExponent = std::stod(val);
                } else if (key == "salt") {
                    t.permuteSalt =
                        std::strtoull(val.c_str(), nullptr, 10);
                } else if (key == "name") {
                    t.name = val;
                    named = true;
                } else {
                    return core::Error(core::Errc::InvalidArgument,
                                       "unknown key '" + key + "'");
                }
            }
            if (!named)
                return core::Error(core::Errc::InvalidArgument,
                                   "tenant without name: " + line);
            spec.tenants.push_back(std::move(t));
        } else {
            return core::Error(core::Errc::InvalidArgument,
                               "bad spec line: " + line);
        }
    }
    return spec;
}

} // namespace molecule::load
