#include "load/generator.hh"

#include <cmath>

#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace molecule::load {

namespace {

/** Distinct sub-stream tags so the three seeded RNGs never alias. */
constexpr std::uint64_t kStreamSalt = 0x6c6f6164ULL;  // "load"
constexpr std::uint64_t kPermSalt = 0x7065726dULL;    // "perm"

constexpr double kPi = 3.14159265358979323846;

/** Zipf CDF over @p n popularity ranks with exponent @p s. */
std::vector<double>
zipfCdf(std::size_t n, double s)
{
    std::vector<double> cdf(n, 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += std::pow(double(i + 1), -s);
        cdf[i] = total;
    }
    for (auto &c : cdf)
        c /= total;
    return cdf;
}

/** Index of the first CDF entry >= u (inverse-transform sampling). */
std::uint32_t
sampleCdf(const std::vector<double> &cdf, double u)
{
    std::size_t lo = 0, hi = cdf.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return std::uint32_t(lo);
}

} // namespace

OpenLoopGenerator::OpenLoopGenerator(TraceSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed ^ kStreamSalt)
{
    buildTables();
    reset();
}

void
OpenLoopGenerator::buildTables()
{
    // The implicit tenant when the mix is empty.
    std::vector<TenantSpec> tenants = spec_.tenants;
    if (tenants.empty())
        tenants.push_back(TenantSpec{"default", 1.0, 1.1, 0});

    double totalShare = 0.0;
    for (const auto &t : tenants)
        totalShare += t.share > 0.0 ? t.share : 0.0;
    if (totalShare <= 0.0)
        totalShare = 1.0;

    double acc = 0.0;
    tenantCdf_.clear();
    for (const auto &t : tenants) {
        acc += (t.share > 0.0 ? t.share : 0.0) / totalShare;
        tenantCdf_.push_back(acc);
    }
    if (!tenantCdf_.empty())
        tenantCdf_.back() = 1.0;

    const std::size_t n = spec_.functions.size();
    fnCdf_.clear();
    fnRank_.clear();
    for (const auto &t : tenants) {
        fnCdf_.push_back(n > 0 ? zipfCdf(n, t.zipfExponent)
                               : std::vector<double>{});
        // Tenant-private ranking: a Fisher-Yates shuffle from a
        // salt-derived RNG, independent of the arrival stream. Equal
        // salts share a ranking (the single-tenant default).
        std::vector<std::uint32_t> rank(n);
        for (std::uint32_t i = 0; i < n; ++i)
            rank[i] = i;
        sim::Rng perm(spec_.seed ^ t.permuteSalt ^ kPermSalt);
        for (std::size_t i = n; i > 1; --i) {
            const auto j =
                std::size_t(perm.uniformInt(0, std::int64_t(i) - 1));
            std::swap(rank[i - 1], rank[j]);
        }
        fnRank_.push_back(std::move(rank));
    }
}

void
OpenLoopGenerator::reset()
{
    rng_ = sim::Rng(spec_.seed ^ kStreamSalt);
    clock_ = sim::SimTime(0);
    emitted_ = 0;
    inBurst_ = false;
    dwellEnd_ = sim::SimTime(0);
    if (spec_.arrival == ArrivalKind::Mmpp &&
        spec_.meanDwellBase.raw() > 0 && spec_.meanDwellBurst.raw() > 0)
        dwellEnd_ = sim::SimTime::fromSeconds(
            rng_.exponential(spec_.meanDwellBase.toSeconds()));
}

sim::SimTime
OpenLoopGenerator::nextGap()
{
    const double rate = spec_.ratePerSecond;
    switch (spec_.arrival) {
    case ArrivalKind::Mmpp: {
        // Degenerate dwell parameters collapse to plain Poisson.
        if (spec_.meanDwellBase.raw() <= 0 ||
            spec_.meanDwellBurst.raw() <= 0)
            break;
        const sim::SimTime start = clock_;
        sim::SimTime at = clock_;
        for (;;) {
            const double r =
                inBurst_ ? rate * spec_.burstFactor : rate;
            const sim::SimTime dt =
                sim::SimTime::fromSeconds(rng_.exponential(1.0 / r));
            if (at + dt <= dwellEnd_)
                return at + dt - start;
            // The dwell ends before the candidate fires: jump to the
            // state switch and resample there — exact thanks to the
            // exponential's memorylessness.
            at = dwellEnd_;
            if (at >= spec_.duration)
                return at - start; // past the horizon; next() ends
            inBurst_ = !inBurst_;
            const sim::SimTime dwellMean = inBurst_
                                               ? spec_.meanDwellBurst
                                               : spec_.meanDwellBase;
            dwellEnd_ = at + sim::SimTime::fromSeconds(
                                 rng_.exponential(
                                     dwellMean.toSeconds()));
        }
    }
    case ArrivalKind::Diurnal: {
        if (spec_.diurnalPeriod.raw() <= 0 ||
            spec_.diurnalAmplitude <= 0.0)
            break;
        // Lewis-Shedler thinning against the peak rate.
        const double amp = spec_.diurnalAmplitude;
        const double peak = rate * (1.0 + amp);
        const sim::SimTime start = clock_;
        sim::SimTime at = clock_;
        for (;;) {
            at += sim::SimTime::fromSeconds(
                rng_.exponential(1.0 / peak));
            if (at >= spec_.duration)
                return at - start;
            const double phase = 2.0 * kPi * at.toSeconds() /
                                 spec_.diurnalPeriod.toSeconds();
            const double lambda =
                rate * (1.0 + amp * std::sin(phase));
            if (rng_.uniform() * peak <= lambda)
                return at - start;
        }
    }
    case ArrivalKind::Poisson:
        break;
    }
    return sim::SimTime::fromSeconds(rng_.exponential(1.0 / rate));
}

std::uint32_t
OpenLoopGenerator::sampleTenant()
{
    if (tenantCdf_.size() <= 1)
        return 0;
    return sampleCdf(tenantCdf_, rng_.uniform());
}

std::uint32_t
OpenLoopGenerator::sampleFunction(std::uint32_t tenant)
{
    const auto &cdf = fnCdf_[tenant];
    if (cdf.size() <= 1)
        return 0;
    const std::uint32_t rank = sampleCdf(cdf, rng_.uniform());
    return fnRank_[tenant][rank];
}

bool
OpenLoopGenerator::next(Arrival &out)
{
    if (clock_ >= spec_.duration || spec_.ratePerSecond <= 0.0)
        return false;
    clock_ += nextGap();
    if (clock_ >= spec_.duration)
        return false;
    out.at = clock_;
    // Fixed draw order per arrival (gap, tenant, function) — part of
    // the bit-for-bit stream contract.
    out.tenant = sampleTenant();
    out.fn = sampleFunction(out.tenant);
    ++emitted_;
    return true;
}

std::vector<Arrival>
OpenLoopGenerator::generate()
{
    std::vector<Arrival> out;
    out.reserve(std::size_t(spec_.expectedArrivals() * 1.1) + 16);
    Arrival a;
    while (next(a))
        out.push_back(a);
    return out;
}

std::uint64_t
streamDigest(const TraceSpec &spec)
{
    OpenLoopGenerator gen(spec);
    sim::Fingerprint fp;
    Arrival a;
    while (gen.next(a)) {
        fp.mix(std::uint64_t(a.at.raw()));
        fp.mix(a.fn);
        fp.mix(a.tenant);
    }
    fp.mix(gen.emitted());
    return fp.digest();
}

sim::Task<>
drive(sim::Simulation &sim, OpenLoopGenerator &gen, ArrivalSink &sink)
{
    // Boot work may already have advanced the clock; the stream's t=0
    // is wherever the simulation stands when driving starts.
    const sim::SimTime epoch = sim.now();
    Arrival a;
    while (gen.next(a)) {
        const sim::SimTime at = epoch + a.at;
        if (at > sim.now())
            co_await sim.delay(at - sim.now());
        a.at = at;
        sink.onArrival(a);
    }
}

} // namespace molecule::load
