#include "fault/plan.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "sim/random.hh"

namespace molecule::fault {

const char *
toString(FaultKind k)
{
    switch (k) {
    case FaultKind::PuCrash:
        return "pu-crash";
    case FaultKind::LinkDegrade:
        return "link-degrade";
    case FaultKind::FpgaReconfigFail:
        return "fpga-reconfig-fail";
    case FaultKind::SandboxOom:
        return "sandbox-oom";
    }
    return "?";
}

InjectionPlan &
InjectionPlan::crashPu(int pu, sim::SimTime at, sim::SimTime downFor)
{
    FaultSpec s;
    s.kind = FaultKind::PuCrash;
    s.at = at;
    s.pu = pu;
    s.duration = downFor;
    return add(std::move(s));
}

InjectionPlan &
InjectionPlan::degradeLink(int a, int b, sim::SimTime at,
                           sim::SimTime blackout, sim::SimTime window,
                           double factor)
{
    FaultSpec s;
    s.kind = FaultKind::LinkDegrade;
    s.at = at;
    s.pu = a;
    s.peer = b;
    s.blackout = blackout;
    s.duration = window;
    s.factor = factor;
    return add(std::move(s));
}

InjectionPlan &
InjectionPlan::failFpgaReconfig(int pu, sim::SimTime at, int count)
{
    FaultSpec s;
    s.kind = FaultKind::FpgaReconfigFail;
    s.at = at;
    s.pu = pu;
    s.count = count;
    return add(std::move(s));
}

InjectionPlan &
InjectionPlan::oomKill(int pu, const std::string &function,
                       sim::SimTime at)
{
    FaultSpec s;
    s.kind = FaultKind::SandboxOom;
    s.at = at;
    s.pu = pu;
    s.target = function;
    return add(std::move(s));
}

InjectionPlan
InjectionPlan::scatter(std::uint64_t seed, int puCount,
                       sim::SimTime horizon, int count,
                       const ScatterMix &mix)
{
    InjectionPlan plan(seed);
    // Plan-owned stream: scattering happens at build time and shares
    // nothing with the simulation RNG.
    sim::Rng rng(seed ^ 0x6661756c74ULL /* "fault" */);

    std::vector<FaultKind> kinds;
    if (mix.puCrash)
        kinds.push_back(FaultKind::PuCrash);
    if (mix.linkDegrade)
        kinds.push_back(FaultKind::LinkDegrade);
    if (mix.fpgaReconfig)
        kinds.push_back(FaultKind::FpgaReconfigFail);
    if (mix.sandboxOom)
        kinds.push_back(FaultKind::SandboxOom);
    if (kinds.empty() || puCount <= 0 || count <= 0)
        return plan;

    for (int i = 0; i < count; ++i) {
        const FaultKind kind =
            kinds[std::size_t(rng.uniformInt(0, int(kinds.size()) - 1))];
        const sim::SimTime at{rng.uniformInt(0, horizon.raw() - 1)};
        const int pu = int(rng.uniformInt(0, puCount - 1));
        switch (kind) {
        case FaultKind::PuCrash:
            // Never crash PU 0: the manager PU is this model's
            // stand-in for the host control plane.
            plan.crashPu(pu == 0 ? 1 % puCount : pu, at,
                         sim::SimTime{rng.uniformInt(
                             sim::SimTime::milliseconds(1).raw(),
                             sim::SimTime::milliseconds(20).raw())});
            break;
        case FaultKind::LinkDegrade: {
            const int peer = (pu + 1) % puCount;
            const sim::SimTime window{rng.uniformInt(
                sim::SimTime::milliseconds(2).raw(),
                sim::SimTime::milliseconds(30).raw())};
            plan.degradeLink(pu, peer, at, window / 4.0, window,
                             rng.uniform(1.5, 8.0));
            break;
        }
        case FaultKind::FpgaReconfigFail:
            plan.failFpgaReconfig(pu, at,
                                  int(rng.uniformInt(1, 2)));
            break;
        case FaultKind::SandboxOom:
            plan.oomKill(pu, mix.oomFunction, at);
            break;
        }
    }
    return plan;
}

std::string
InjectionPlan::serialize() const
{
    std::ostringstream out;
    out << "injection-plan v1 seed=" << seed_ << "\n";
    for (const auto &f : faults_) {
        out << "fault kind=" << toString(f.kind) << " at=" << f.at.raw()
            << " pu=" << f.pu << " peer=" << f.peer
            << " dur=" << f.duration.raw()
            << " blackout=" << f.blackout.raw();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", f.factor);
        out << " factor=" << buf << " count=" << f.count
            << " target=" << f.target << "\n";
    }
    return out.str();
}

namespace {

/** Parse "key=value" off the front of @p s; empty key on mismatch. */
bool
splitKv(const std::string &tok, std::string &key, std::string &val)
{
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
        return false;
    key = tok.substr(0, eq);
    val = tok.substr(eq + 1);
    return true;
}

core::Expected<FaultKind>
parseKind(const std::string &s)
{
    for (FaultKind k :
         {FaultKind::PuCrash, FaultKind::LinkDegrade,
          FaultKind::FpgaReconfigFail, FaultKind::SandboxOom}) {
        if (s == toString(k))
            return k;
    }
    return core::Error(core::Errc::InvalidArgument,
                       "unknown fault kind '" + s + "'");
}

} // namespace

core::Expected<InjectionPlan>
InjectionPlan::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        return core::Error(core::Errc::InvalidArgument, "empty plan");
    std::uint64_t seed = 0;
    if (std::sscanf(line.c_str(), "injection-plan v1 seed=%" SCNu64,
                    &seed) != 1)
        return core::Error(core::Errc::InvalidArgument,
                           "bad plan header: " + line);
    InjectionPlan plan(seed);

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream toks(line);
        std::string word;
        toks >> word;
        if (word != "fault")
            return core::Error(core::Errc::InvalidArgument,
                               "bad plan line: " + line);
        FaultSpec spec;
        std::string key, val;
        while (toks >> word) {
            if (!splitKv(word, key, val))
                return core::Error(core::Errc::InvalidArgument,
                                   "bad token '" + word + "'");
            if (key == "kind") {
                auto kind = parseKind(val);
                if (!kind.ok())
                    return kind.error();
                spec.kind = kind.value();
            } else if (key == "at") {
                spec.at = sim::SimTime(std::stoll(val));
            } else if (key == "pu") {
                spec.pu = std::stoi(val);
            } else if (key == "peer") {
                spec.peer = std::stoi(val);
            } else if (key == "dur") {
                spec.duration = sim::SimTime(std::stoll(val));
            } else if (key == "blackout") {
                spec.blackout = sim::SimTime(std::stoll(val));
            } else if (key == "factor") {
                spec.factor = std::stod(val);
            } else if (key == "count") {
                spec.count = std::stoi(val);
            } else if (key == "target") {
                spec.target = val;
            } else {
                return core::Error(core::Errc::InvalidArgument,
                                   "unknown key '" + key + "'");
            }
        }
        plan.add(std::move(spec));
    }
    return plan;
}

} // namespace molecule::fault
