#include "fault/injector.hh"

#include <vector>

namespace molecule::fault {

void
Injector::arm(const InjectionPlan &plan)
{
    const sim::SimTime now = sim_.now();
    // One batched schedule for the whole plan: sequence numbers (and
    // therefore same-instant firing order) match the old one-call-per-
    // spec loop exactly, but the queue is entered once.
    std::vector<sim::BatchEvent> batch;
    batch.reserve(plan.specs().size());
    for (const FaultSpec &spec : plan.specs()) {
        armed_.push_back(spec);
        const FaultSpec *slot = &armed_.back();
        const sim::SimTime after =
            spec.at > now ? spec.at - now : sim::SimTime(0);
        batch.push_back(sim::BatchEvent{
            after, sim::InlineCallback([this, slot] { fire(*slot); })});
    }
    sim_.scheduleBatch(batch);
}

void
Injector::fire(const FaultSpec &spec)
{
    ++fired_;
    obs::Span span =
        obs::Span::root(tracer_, "fault.inject", obs::Layer::Core,
                        spec.pu);
    span.setDetail(toString(spec.kind));
    if (tracer_) {
        tracer_->metrics().counter("fault.injected").inc();
        tracer_->metrics()
            .counter(std::string("fault.") + toString(spec.kind))
            .inc();
    }
    if (recorder_ != nullptr)
        recorder_->trigger(std::string("fault.") + toString(spec.kind),
                           sim_.now());

    switch (spec.kind) {
    case FaultKind::PuCrash: {
        state_.crashPu(spec.pu);
        const int pu = spec.pu;
        sim_.schedule(spec.duration, [this, pu] { restart(pu); });
        break;
    }
    case FaultKind::LinkDegrade: {
        const sim::SimTime now = sim_.now();
        LinkFault f;
        f.downUntil = now + spec.blackout;
        f.degradedUntil = now + spec.duration;
        f.factor = spec.factor;
        state_.setLinkFault(spec.pu, spec.peer, f);
        span.setArg(std::int64_t(spec.factor * 1000));
        break;
    }
    case FaultKind::FpgaReconfigFail:
        state_.armFpgaReconfigFailure(spec.pu, spec.count);
        span.setArg(spec.count);
        break;
    case FaultKind::SandboxOom:
        state_.oomKill(spec.pu, spec.target);
        span.setDetail(spec.target.empty() ? "sandbox-oom"
                                           : spec.target.c_str());
        break;
    }
}

void
Injector::restart(int pu)
{
    obs::Span span =
        obs::Span::root(tracer_, "fault.restart", obs::Layer::Core, pu);
    if (tracer_)
        tracer_->metrics().counter("fault.pu_restart").inc();
    state_.restartPu(pu);
}

} // namespace molecule::fault
