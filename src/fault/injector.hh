/**
 * @file
 * Arms an InjectionPlan against a running simulation.
 *
 * The Injector schedules exactly one event per fault spec (plus one
 * restart event per PuCrash) at plan-build-time instants. An empty
 * plan schedules nothing — attaching an Injector with an empty plan
 * is bit-identical to not attaching one (the "empty tracer" pattern
 * of obs::Tracer, enforced by the golden-digest chaos tests).
 *
 * Observability: each fired fault emits a "fault.inject" root span
 * (detail = kind) and bumps per-kind counters when a tracer is
 * attached; recovery spans are emitted by the recovery layer, not
 * here.
 */

#ifndef MOLECULE_FAULT_INJECTOR_HH
#define MOLECULE_FAULT_INJECTOR_HH

#include <deque>

#include "fault/plan.hh"
#include "fault/state.hh"
#include "obs/flight_recorder.hh"
#include "obs/trace.hh"
#include "sim/simulation.hh"

namespace molecule::fault {

class Injector
{
  public:
    /**
     * @param sim the simulation whose clock drives fault instants
     * @param state the fault state the fired faults mutate
     * @param tracer optional span/counter sink (may be null)
     */
    Injector(sim::Simulation &sim, FaultState &state,
             obs::Tracer *tracer = nullptr)
        : sim_(sim), state_(state), tracer_(tracer)
    {}

    Injector(const Injector &) = delete;
    Injector &operator=(const Injector &) = delete;

    /**
     * Schedule every spec of @p plan. Specs whose instant is in the
     * past fire at the current instant (ordered behind pending work).
     * No-op for an empty plan. May be called more than once; armed
     * specs are copied into injector-owned storage.
     */
    void arm(const InjectionPlan &plan);

    /** Faults fired so far (restarts not counted). */
    int firedCount() const { return fired_; }

    /** Every fired fault also triggers this recorder (reason
     * "fault.<kind>"), freezing the telemetry black box at the
     * injection instant. Null (the default) disables it. */
    void setRecorder(obs::FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

  private:
    void fire(const FaultSpec &spec);

    void restart(int pu);

    sim::Simulation &sim_;
    FaultState &state_;
    obs::Tracer *tracer_;
    obs::FlightRecorder *recorder_ = nullptr;
    /** Stable addresses: scheduled lambdas point into this deque. */
    std::deque<FaultSpec> armed_;
    int fired_ = 0;
};

} // namespace molecule::fault

#endif // MOLECULE_FAULT_INJECTOR_HH
