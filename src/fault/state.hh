/**
 * @file
 * Live fault state of one simulated computer.
 *
 * FaultState is the single source of truth the model layers consult:
 * the topology asks linkFault() before moving bytes, the FPGA runtime
 * asks consumeFpgaReconfigFailure() before flashing, the scheduler and
 * gateway ask puUp() before placing, and the XPU-Shim compares
 * puEpoch() snapshots to detect a peer reboot. Mutations come from the
 * Injector (plan-driven) or directly from tests.
 *
 * Listeners are how *recovery* hangs off fault events without the
 * fault layer knowing about the runtime: core::RecoveryManager
 * registers one and reacts (purge, resync, re-warm). Listener order is
 * registration order; all containers are ordered maps so iteration is
 * deterministic (lint wall: no unordered iteration feeding schedule).
 *
 * Zero-impact guarantee: a FaultState with nothing armed answers every
 * query with "healthy" through pure reads — no events, no RNG — so
 * attaching one to a fault-free run cannot move the golden digests.
 */

#ifndef MOLECULE_FAULT_STATE_HH
#define MOLECULE_FAULT_STATE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/arena.hh"
#include "sim/time.hh"

namespace molecule::fault {

/** An armed link fault (times are absolute sim time). */
struct LinkFault
{
    /** Transfers stall (full drop) until this instant. */
    sim::SimTime downUntil{};
    /** Latencies multiply by `factor` until this instant. */
    sim::SimTime degradedUntil{};
    double factor = 1.0;
};

/** Recovery hook: react to fault events (see core/recovery.hh). */
class Listener
{
  public:
    virtual ~Listener() = default;

    virtual void onPuCrash(int pu) { (void)pu; }

    virtual void onPuRestart(int pu) { (void)pu; }

    virtual void
    onSandboxOom(int pu, const std::string &function)
    {
        (void)pu;
        (void)function;
    }

    virtual void
    onLinkFault(int a, int b)
    {
        (void)a;
        (void)b;
    }
};

class FaultState
{
  public:
    FaultState() = default;

    FaultState(const FaultState &) = delete;
    FaultState &operator=(const FaultState &) = delete;

    /** @name Queries (model layers; pure reads) */
    ///@{
    bool
    puUp(int pu) const
    {
        const auto it = down_.find(pu);
        return it == down_.end() || !it->second;
    }

    /** Number of restarts this PU has been through. */
    std::uint64_t
    puEpoch(int pu) const
    {
        const auto it = epoch_.find(pu);
        return it == epoch_.end() ? 0 : it->second;
    }

    /** Armed fault on the (a, b) link, or nullptr (order-insensitive). */
    const LinkFault *
    linkFault(int a, int b) const
    {
        if (links_.empty())
            return nullptr;
        const auto it = links_.find(linkKey(a, b));
        return it == links_.end() ? nullptr : &it->second;
    }

    /** Consume one armed reconfig failure for @p pu's FPGA (if any). */
    bool
    consumeFpgaReconfigFailure(int pu)
    {
        const auto it = fpgaArmed_.find(pu);
        if (it == fpgaArmed_.end() || it->second <= 0)
            return false;
        --it->second;
        return true;
    }

    bool
    anyArmed() const
    {
        return !down_.empty() || !links_.empty() || !fpgaArmed_.empty();
    }
    ///@}

    /** @name Mutations (Injector / tests) */
    ///@{
    void
    crashPu(int pu)
    {
        down_[pu] = true;
        for (Listener *l : listeners_)
            l->onPuCrash(pu);
    }

    void
    restartPu(int pu)
    {
        down_[pu] = false;
        ++epoch_[pu];
        for (Listener *l : listeners_)
            l->onPuRestart(pu);
    }

    void
    setLinkFault(int a, int b, LinkFault fault)
    {
        links_[linkKey(a, b)] = fault;
        for (Listener *l : listeners_)
            l->onLinkFault(a, b);
    }

    void
    armFpgaReconfigFailure(int pu, int count)
    {
        fpgaArmed_[pu] += count;
    }

    /** Fire a sandbox OOM-kill event (recovery does the killing). */
    void
    oomKill(int pu, const std::string &function)
    {
        for (Listener *l : listeners_)
            l->onSandboxOom(pu, function);
    }
    ///@}

    /** Register @p l (not owned); notified in registration order. */
    void addListener(Listener *l) { listeners_.push_back(l); }

    /** Unregister @p l (a runtime being destroyed before the state). */
    void
    removeListener(Listener *l)
    {
        std::erase(listeners_, l);
    }

  private:
    static std::pair<int, int>
    linkKey(int a, int b)
    {
        return a <= b ? std::pair{a, b} : std::pair{b, a};
    }

    /**
     * Bookkeeping maps bump-allocate their nodes from a private arena:
     * chaos runs arm/clear faults per event, and per-node heap churn
     * on that path is both slow and allocator-order-dependent. Erased
     * nodes are not reused (ArenaAllocator contract) — fault state is
     * small and bounded per run. Maps stay ordered for deterministic
     * listener/iteration behavior. The arena member must precede the
     * maps so it outlives them on destruction.
     */
    template <typename K, typename V>
    using ArenaMap =
        std::map<K, V, std::less<K>,
                 sim::ArenaAllocator<std::pair<const K, V>>>;

    sim::Arena arena_{4 * 1024};
    ArenaMap<int, bool> down_{
        sim::ArenaAllocator<std::pair<const int, bool>>(arena_)};
    ArenaMap<int, std::uint64_t> epoch_{
        sim::ArenaAllocator<std::pair<const int, std::uint64_t>>(
            arena_)};
    ArenaMap<std::pair<int, int>, LinkFault> links_{
        sim::ArenaAllocator<
            std::pair<const std::pair<int, int>, LinkFault>>(arena_)};
    ArenaMap<int, int> fpgaArmed_{
        sim::ArenaAllocator<std::pair<const int, int>>(arena_)};
    std::vector<Listener *> listeners_;
};

} // namespace molecule::fault

#endif // MOLECULE_FAULT_STATE_HH
