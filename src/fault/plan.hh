/**
 * @file
 * Deterministic fault-injection plans.
 *
 * An InjectionPlan is a *value*: an ordered list of fault specs, each
 * pinned to an absolute sim-time instant and a named target. Plans are
 * built by hand (tests), scattered pseudo-randomly from a seed
 * (chaos sweeps), or parsed back from their own serialization — all
 * three produce bit-identical simulations for identical plans.
 *
 * Determinism rules (DESIGN.md §6):
 *  - A plan consumes NO simulation randomness. scatter() draws from a
 *    plan-owned sim::Rng seeded independently, at build time, before
 *    the simulation runs.
 *  - An empty plan has zero model impact: the Injector schedules no
 *    events and the fault hooks in hw/os/sandbox never fire — the
 *    same golden digests hold with no plan and with an empty one.
 *  - Fault instants are absolute sim time fixed at build time, never
 *    derived from model state, so the injected schedule is identical
 *    run-to-run regardless of what the workload does.
 */

#ifndef MOLECULE_FAULT_PLAN_HH
#define MOLECULE_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.hh"
#include "sim/time.hh"

namespace molecule::fault {

/** The injectable failure families (§2 failure domains). */
enum class FaultKind : std::uint8_t {
    /** A PU (DPU, host socket) crashes, dropping its local OS state
     * and capability-table replica, then reboots after `duration`. */
    PuCrash,
    /** An interconnect link drops for `blackout`, then runs with
     * latencies degraded by `factor` until the window ends. */
    LinkDegrade,
    /** The next `count` FPGA partial reconfigurations on this PU fail
     * mid-program (image not flashed, slot left erased). */
    FpgaReconfigFail,
    /** The per-function sandboxes of `target` on this PU are
     * OOM-killed (warm pool entries die; running invocations fail). */
    SandboxOom,
};

const char *toString(FaultKind k);

/** One scheduled fault. Field use depends on `kind` (see FaultKind). */
struct FaultSpec
{
    FaultKind kind = FaultKind::PuCrash;
    /** Absolute sim-time instant the fault fires. */
    sim::SimTime at{};
    /** Target PU (crash / FPGA / OOM) or link endpoint A. */
    int pu = -1;
    /** Link endpoint B (LinkDegrade only). */
    int peer = -1;
    /** Crash downtime, or total link-degradation window. */
    sim::SimTime duration{};
    /** Initial full-drop period of a link fault (<= duration). */
    sim::SimTime blackout{};
    /** Link latency multiplier for the rest of the window. */
    double factor = 1.0;
    /** Number of consecutive FPGA reconfig failures armed. */
    int count = 1;
    /** Function name (SandboxOom); free-form label otherwise. */
    std::string target;

    bool operator==(const FaultSpec &) const = default;
};

/**
 * A deterministic, serializable schedule of faults.
 */
class InjectionPlan
{
  public:
    InjectionPlan() = default;

    explicit InjectionPlan(std::uint64_t seed) : seed_(seed) {}

    std::uint64_t seed() const { return seed_; }

    bool empty() const { return faults_.empty(); }

    std::size_t size() const { return faults_.size(); }

    const std::vector<FaultSpec> &specs() const { return faults_; }

    InjectionPlan &
    add(FaultSpec spec)
    {
        faults_.push_back(std::move(spec));
        return *this;
    }

    /** @name Spec builders (fluent) */
    ///@{
    InjectionPlan &crashPu(int pu, sim::SimTime at, sim::SimTime downFor);

    InjectionPlan &degradeLink(int a, int b, sim::SimTime at,
                               sim::SimTime blackout, sim::SimTime window,
                               double factor);

    InjectionPlan &failFpgaReconfig(int pu, sim::SimTime at,
                                    int count = 1);

    InjectionPlan &oomKill(int pu, const std::string &function,
                           sim::SimTime at);
    ///@}

    /**
     * Scatter @p count faults of the kinds enabled in @p mix uniformly
     * over [0, horizon), targeting PUs in [0, puCount). Uses a
     * plan-owned RNG seeded from @p seed at build time — the resulting
     * plan is a pure function of its arguments.
     */
    struct ScatterMix
    {
        bool puCrash = true;
        bool linkDegrade = true;
        bool fpgaReconfig = false;
        bool sandboxOom = false;
        /** Function targeted by SandboxOom faults. */
        std::string oomFunction;
    };

    static InjectionPlan scatter(std::uint64_t seed, int puCount,
                                 sim::SimTime horizon, int count,
                                 const ScatterMix &mix);

    /**
     * Line-oriented text form, round-trippable through parse():
     *   injection-plan v1 seed=<n>
     *   fault kind=<k> at=<ns> pu=<p> peer=<p> dur=<ns> blackout=<ns>
     *         factor=<f> count=<n> target=<s>
     */
    std::string serialize() const;

    [[nodiscard]] static core::Expected<InjectionPlan>
    parse(const std::string &text);

    bool operator==(const InjectionPlan &) const = default;

  private:
    std::uint64_t seed_ = 0;
    std::vector<FaultSpec> faults_;
};

} // namespace molecule::fault

#endif // MOLECULE_FAULT_PLAN_HH
