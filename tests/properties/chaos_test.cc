/**
 * @file
 * Chaos properties: fault injection is deterministic and complete.
 *
 *  - Zero impact when disabled: attaching a FaultState and arming an
 *    *empty* plan reproduces the fault-free golden digests bit for
 *    bit (the constants pinned in determinism_test.cc).
 *  - Pinned chaos digests: a fixed fault schedule produces the same
 *    digest run-to-run, serially and under the multi-threaded
 *    SweepRunner.
 *  - No hangs: under any single injected fault (every kind, a grid of
 *    instants and seeds) every invocation with retries either
 *    completes or returns a typed error — the Errc::Hang watchdog
 *    never fires.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "fault/injector.hh"
#include "hw/computer.hh"
#include "sim/stats.hh"
#include "sim/sweep.hh"
#include "workloads/catalog.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::Errc;
using core::InvokeOptions;
using core::Molecule;
using core::MoleculeOptions;
using fault::FaultKind;
using fault::FaultState;
using fault::InjectionPlan;
using hw::PuType;
using sim::SimTime;
using workloads::Catalog;

// Fault-free golden digests (determinism_test.cc). An empty plan must
// reproduce them exactly: the fault plumbing schedules no events and
// consumes no randomness when nothing is armed.
constexpr std::uint64_t kGolden42 = 0x582305e76012b3f7ULL;
constexpr std::uint64_t kGolden7 = 0x2dacb53306886fbcULL;
constexpr std::uint64_t kGolden1 = 0x799fabc445a22749ULL;

/**
 * The determinism_test scenario verbatim, with the fault subsystem
 * attached and an empty plan armed. Must hit the fault-free digests.
 */
std::uint64_t
emptyPlanDigest(std::uint64_t seed)
{
    sim::Simulation sim(seed);
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    FaultState faults;
    MoleculeOptions mo;
    mo.faults = &faults;
    Molecule runtime(*computer, mo);
    runtime.registerCpuFunction("helloworld",
                                {PuType::HostCpu, PuType::Dpu});
    for (const auto &fn : Catalog::alexaChain())
        runtime.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    runtime.start();

    fault::Injector injector(sim, faults);
    injector.arm(InjectionPlan{});

    sim::Fingerprint fp;
    auto cold = runtime.invokeSync("helloworld", 0).value();
    fp.mix(std::uint64_t(cold.endToEnd.raw()));
    auto warm = runtime.invokeSync("helloworld", 0).value();
    fp.mix(std::uint64_t(warm.endToEnd.raw()));
    auto remote = runtime.invokeSync("helloworld", 1).value();
    fp.mix(std::uint64_t(remote.startup.raw()));

    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    std::vector<int> cross{0, 1, 0, 1, 0};
    auto rec = runtime.invokeChainSync(spec, cross).value();
    fp.mix(std::uint64_t(rec.endToEnd.raw()));
    for (const auto &edge : rec.edgeLatencies)
        fp.mix(std::uint64_t(edge.raw()));
    return fp.digest();
}

/** Mix an invocation outcome — success timings or the typed error. */
void
mixOutcome(sim::Fingerprint &fp,
           const core::Expected<obs::InvocationRecord> &out)
{
    if (out.ok()) {
        fp.mix(std::uint64_t(out.value().endToEnd.raw()));
        fp.mix(std::uint64_t(out.value().pu));
        fp.mix(std::uint64_t(out.value().pusTried.size()));
    } else {
        fp.mix(0xFA17EDULL);
        fp.mix(std::uint64_t(out.error().code()));
        fp.mix(std::uint64_t(out.error().retries()));
    }
}

/**
 * One chaos scenario: the standard workload driven with retries +
 * failover under @p plan. Returns an outcome digest; also reports
 * whether any invocation hit the Errc::Hang watchdog.
 */
std::uint64_t
chaosDigest(std::uint64_t seed, const InjectionPlan &plan,
            bool *sawHang = nullptr)
{
    sim::Simulation sim(seed);
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    FaultState faults;
    MoleculeOptions mo;
    mo.faults = &faults;
    Molecule runtime(*computer, mo);
    runtime.registerCpuFunction("helloworld",
                                {PuType::HostCpu, PuType::Dpu});
    runtime.registerCpuFunction("image-resize",
                                {PuType::HostCpu, PuType::Dpu});
    runtime.start();

    fault::Injector injector(sim, faults);
    injector.arm(plan);

    bool hang = false;
    sim::Fingerprint fp;
    auto track = [&](const core::Expected<obs::InvocationRecord> &out) {
        hang |= !out.ok() && out.error().code() == Errc::Hang;
        mixOutcome(fp, out);
    };

    InvokeOptions retry;
    retry.maxAttempts = 3;
    for (int round = 0; round < 4; ++round) {
        retry.pu = 1;
        track(runtime.invokeSync("helloworld", retry));
        retry.pu = -1;
        track(runtime.invokeSync("image-resize", retry));
    }
    if (sawHang != nullptr)
        *sawHang = hang;
    return fp.digest();
}

/** The pinned chaos schedule: one fault of every kind. */
InjectionPlan
pinnedPlan()
{
    InjectionPlan plan(0);
    plan.crashPu(1, SimTime::milliseconds(250),
                 SimTime::milliseconds(8))
        .degradeLink(0, 1, SimTime::milliseconds(280),
                     SimTime::milliseconds(4), SimTime::milliseconds(12),
                     4.0)
        .oomKill(1, "image-resize", SimTime::milliseconds(300))
        .failFpgaReconfig(0, SimTime::milliseconds(310));
    return plan;
}

// Golden chaos digests for pinnedPlan(): captured once, pinned
// forever. A change to the fault, recovery or retry path that moves
// these must recapture them and say so in the commit.
constexpr std::uint64_t kChaos42 = 0xe6292dc43c5712b8ULL;
constexpr std::uint64_t kChaos7 = 0xe20f473224b555feULL;
constexpr std::uint64_t kChaos1 = 0x9a8a7f180b46919eULL;

TEST(Chaos, EmptyPlanReproducesFaultFreeGoldenDigests)
{
    EXPECT_EQ(emptyPlanDigest(42), kGolden42);
    EXPECT_EQ(emptyPlanDigest(7), kGolden7);
    EXPECT_EQ(emptyPlanDigest(1), kGolden1);
}

TEST(Chaos, PinnedFaultScheduleHasGoldenDigests)
{
    bool hang = true;
    EXPECT_EQ(chaosDigest(42, pinnedPlan(), &hang), kChaos42);
    EXPECT_FALSE(hang);
    EXPECT_EQ(chaosDigest(7, pinnedPlan()), kChaos7);
    EXPECT_EQ(chaosDigest(1, pinnedPlan()), kChaos1);
}

TEST(Chaos, PinnedDigestsHoldUnderSweepRunner)
{
    const std::uint64_t seeds[] = {42, 7, 1, 42, 7, 1};
    const std::uint64_t golden[] = {kChaos42, kChaos7, kChaos1,
                                    kChaos42, kChaos7, kChaos1};
    sim::SweepRunner pool;
    auto digests = pool.map<std::uint64_t>(
        std::size(seeds), [&](std::size_t i) {
            return chaosDigest(seeds[i], pinnedPlan());
        });
    for (std::size_t i = 0; i < std::size(seeds); ++i)
        EXPECT_EQ(digests[i], golden[i]) << "replica " << i;
}

TEST(Chaos, NoHangUnderAnySingleFault)
{
    // Property: any single fault, any instant on a coarse grid, any
    // seed — with retries enabled every invocation completes or
    // returns a typed error; the sim-time watchdog never reports a
    // hang. (FPGA faults are inert on this CPU+DPU box; they still
    // must not wedge anything.)
    const FaultKind kinds[] = {FaultKind::PuCrash,
                               FaultKind::LinkDegrade,
                               FaultKind::FpgaReconfigFail,
                               FaultKind::SandboxOom};
    const std::int64_t instantsMs[] = {0, 1, 5, 40, 200, 400};
    for (std::uint64_t seed : {1, 2, 3}) {
        for (FaultKind kind : kinds) {
            for (std::int64_t ms : instantsMs) {
                InjectionPlan plan;
                const SimTime at = SimTime::milliseconds(ms);
                switch (kind) {
                case FaultKind::PuCrash:
                    plan.crashPu(1, at, SimTime::milliseconds(6));
                    break;
                case FaultKind::LinkDegrade:
                    plan.degradeLink(0, 1, at, SimTime::milliseconds(5),
                                     SimTime::milliseconds(15), 3.0);
                    break;
                case FaultKind::FpgaReconfigFail:
                    plan.failFpgaReconfig(0, at, 2);
                    break;
                case FaultKind::SandboxOom:
                    plan.oomKill(1, "image-resize", at);
                    break;
                }
                bool hang = true;
                (void)chaosDigest(seed, plan, &hang);
                EXPECT_FALSE(hang)
                    << toString(kind) << " at " << ms << "ms, seed "
                    << seed;
            }
        }
    }
}

TEST(Chaos, SameScheduleSameOutcomeDigest)
{
    InjectionPlan::ScatterMix mix;
    mix.sandboxOom = true;
    mix.oomFunction = "image-resize";
    const auto plan = InjectionPlan::scatter(
        21, 3, SimTime::milliseconds(500), 6, mix);
    EXPECT_EQ(chaosDigest(5, plan), chaosDigest(5, plan));
}

} // namespace
