/**
 * @file
 * Telemetry-plane determinism properties.
 *
 * An over-saturated two-node cluster with the full observation stack
 * attached (TimeSeries windows, SloMonitor burn-rate alerts) must
 * produce a bit-identical (stats, window, alert) digest triple across
 * serial runs, re-runs, and sim::SweepRunner replicas, and the window
 * deltas must conserve exactly against the run totals — per seed.
 * tools/slo_report.cc drives the same property at CI scale; this is
 * the tier-1 distillation. Compiled down to a stub check with
 * MOLECULE_TELEMETRY=0.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/gateway.hh"
#include "obs/slo.hh"
#include "obs/timeseries.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"

namespace {

using namespace molecule;
using sim::SimTime;

#if MOLECULE_TELEMETRY

struct Triple
{
    std::uint64_t stats = 0;
    std::uint64_t windows = 0;
    std::uint64_t alerts = 0;

    bool operator==(const Triple &) const = default;
};

/** Over-saturate 2 nodes so queues grow and latency alerts must
 * fire; return the digest triple (and check conservation inline). */
Triple
saturatedRun(std::uint64_t seed)
{
    sim::Simulation sim(seed);
    cluster::FleetSpec fleetSpec;
    fleetSpec.nodes = 2;
    fleetSpec.dpusPerNode = 1;
    cluster::Fleet fleet(sim, fleetSpec);
    fleet.registerCpuFunction(
        "helloworld", {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.registerCpuFunction(
        "pyaes", {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();

    obs::Registry registry;
    cluster::ClusterStats stats(registry);
    obs::TimeSeries ts(sim, {SimTime::seconds(1)});
    stats.attachTelemetry(&ts);

    obs::SloSpec sloSpec;
    sloSpec.tenants = 1;
    obs::SloObjective o;
    o.name = "latency-p99";
    o.thresholdUs = 20'000.0;
    sloSpec.objectives = {o};
    obs::SloMonitor monitor(ts, sloSpec);

    cluster::LeastOutstandingPolicy policy;
    cluster::AdmissionOptions admission;
    admission.tokensPerSecond = 0.0;
    admission.queueCapacity = 8192;
    admission.maxOutstandingPerNode = 48;
    cluster::GatewayConfig cfg = cluster::GatewayConfig::forFunctions(
        {"helloworld", "pyaes"}, stats);
    cfg.admission = admission;
    cfg.dispatch = &policy;
    cluster::ClusterGateway gateway(fleet, cfg);

    load::TraceSpec trace;
    trace.seed = seed;
    trace.ratePerSecond = 400.0;
    trace.duration = SimTime::seconds(10);
    trace.functions = {"helloworld", "pyaes"};
    load::OpenLoopGenerator gen(trace);
    const SimTime t0 = sim.now();
    sim.spawn(load::drive(sim, gen, gateway));
    sim.run();
    ts.flush();

    // Window deltas conserve against the run totals.
    const auto completedId = ts.counterId("tenant.completed", 0);
    std::int64_t windowSum = 0;
    for (const auto &w : ts.windows())
        if (const obs::WindowPoint *p = w.find(completedId))
            windowSum += p->count;
    EXPECT_EQ(windowSum, ts.counterValue(completedId));
    const auto summary =
        stats.summarize(sim.now() - t0, fleet.coreTable());
    EXPECT_EQ(windowSum, summary.completed);

    // Saturation means the latency objective cannot stay green.
    EXPECT_GT(monitor.alertCount(), 0u);
    EXPECT_GT(ts.windowsClosed(), 0u);

    return {stats.digest(), ts.digest(), monitor.alertDigest()};
}

TEST(TelemetryDeterminism, TripleMatchesSerialRerunAndSweepRunner)
{
    const std::vector<std::uint64_t> seeds = {42, 7, 1};

    std::vector<Triple> serial;
    for (const auto seed : seeds)
        serial.push_back(saturatedRun(seed));
    // Distinct seeds must not collide (the triple is load-bearing).
    EXPECT_NE(serial[0], serial[1]);
    EXPECT_NE(serial[1], serial[2]);

    std::vector<Triple> rerun;
    for (const auto seed : seeds)
        rerun.push_back(saturatedRun(seed));
    EXPECT_EQ(serial, rerun);

    sim::SweepRunner pool;
    const auto threaded = pool.map<Triple>(
        seeds.size(),
        [&](std::size_t i) { return saturatedRun(seeds[i]); });
    EXPECT_EQ(serial, threaded);
}

#else // !MOLECULE_TELEMETRY

TEST(TelemetryDeterminismStub, SurfaceIsInert)
{
    SUCCEED();
}

#endif // MOLECULE_TELEMETRY

} // namespace
