/**
 * @file
 * Parameterized property sweeps (TEST_P) over the protocol space:
 * transports x message sizes, placements, DPU generations, chain
 * lengths and keep-alive policies. Each sweep asserts an invariant
 * that must hold at *every* point, not just the paper's samples.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "sim/sweep.hh"
#include "workloads/catalog.hh"
#include "xpu/client.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::Molecule;
using core::MoleculeOptions;
using hw::DpuGeneration;
using hw::PuType;
using workloads::Catalog;
using xpu::TransportKind;

// ---------------------------------------------------------------------
// Sweep 1: nIPC latency over transports x sizes. Invariants: Poll <=
// MPSC <= Base at every size; latency is monotone in message size.
// ---------------------------------------------------------------------

struct NipcCase
{
    TransportKind kind;
    std::uint64_t bytes;
};

class NipcSweep : public ::testing::TestWithParam<NipcCase>
{
  protected:
    /** Measured write latency for one (transport, size) point. */
    static sim::SimTime
    measure(TransportKind kind, std::uint64_t bytes)
    {
        sim::Simulation sim;
        auto computer = hw::buildCpuDpuServer(sim, 1,
                                              DpuGeneration::Bf1);
        os::LocalOs cpuOs{computer->pu(0)};
        os::LocalOs dpuOs{computer->pu(1)};
        xpu::XpuShimNetwork net{*computer};
        auto *cpuShim = net.addShim(cpuOs, TransportKind::Fifo);
        auto *dpuShim = net.addShim(dpuOs, kind);
        (void)cpuShim;

        os::Process *reader = nullptr;
        os::Process *writer = nullptr;
        auto boot = [](os::LocalOs *a, os::LocalOs *b, os::Process **r,
                       os::Process **w) -> sim::Task<> {
            *r = co_await a->spawnProcess("r", 1 << 20);
            *w = co_await b->spawnProcess("w", 1 << 20);
        };
        sim.spawn(boot(&cpuOs, &dpuOs, &reader, &writer));
        sim.run();
        xpu::XpuClient rc(net.shimOn(0), *reader);
        xpu::XpuClient wc(*dpuShim, *writer);

        sim::SimTime out;
        auto run = [](xpu::XpuClient *r, xpu::XpuClient *w,
                      std::uint64_t sz, sim::Simulation *s,
                      sim::SimTime *lat) -> sim::Task<> {
            auto fd = co_await r->xfifoInit("sweep");
            (void)co_await r->grantCap(w->xpuPid(),
                                       r->objectOf(fd.value()),
                                       xpu::Perm::Write);
            auto wfd = co_await w->xfifoConnect("sweep");
            const auto t0 = s->now();
            (void)co_await w->xfifoWrite(wfd.value(), sz, "m");
            *lat = s->now() - t0;
        };
        sim.spawn(run(&rc, &wc, bytes, &sim, &out));
        sim.run();
        return out;
    }
};

TEST_P(NipcSweep, TransportOrderingHoldsEverywhere)
{
    const auto p = GetParam();
    const auto base = measure(TransportKind::Fifo, p.bytes);
    const auto mpsc = measure(TransportKind::Mpsc, p.bytes);
    const auto poll = measure(TransportKind::MpscPoll, p.bytes);
    EXPECT_LT(poll, mpsc);
    EXPECT_LT(mpsc, base);

    // Monotone in size (compare against a 4x smaller message).
    if (p.bytes >= 64) {
        const auto smaller = measure(p.kind, p.bytes / 4);
        EXPECT_LE(smaller, measure(p.kind, p.bytes));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NipcSweep,
    ::testing::Values(NipcCase{TransportKind::Fifo, 16},
                      NipcCase{TransportKind::Fifo, 256},
                      NipcCase{TransportKind::Mpsc, 1024},
                      NipcCase{TransportKind::MpscPoll, 2048},
                      NipcCase{TransportKind::MpscPoll, 64}));

// ---------------------------------------------------------------------
// Sweep 2: chains of every length x placement pattern. Invariants:
// Molecule IPC beats the HTTP baseline; end-to-end grows with length;
// every edge latency is positive.
// ---------------------------------------------------------------------

struct ChainCase
{
    int length;
    bool cross; // alternate CPU/DPU placement
};

class ChainSweep : public ::testing::TestWithParam<ChainCase>
{
  protected:
    static obs::ChainRecord
    run(bool moleculeMode, int length, bool cross)
    {
        sim::Simulation sim;
        auto computer = hw::buildCpuDpuServer(sim, 1,
                                              DpuGeneration::Bf2);
        MoleculeOptions options = moleculeMode
                                      ? MoleculeOptions{}
                                      : MoleculeOptions::homo();
        Molecule runtime(*computer, options);
        auto fns = Catalog::alexaChain();
        for (const auto &fn : fns)
            runtime.registerCpuFunction(fn,
                                        {PuType::HostCpu, PuType::Dpu});
        runtime.start();
        std::vector<std::string> chain(fns.begin(),
                                       fns.begin() + length);
        std::vector<int> placement;
        for (int i = 0; i < length; ++i)
            placement.push_back(cross ? i % 2 : 0);
        auto spec = ChainSpec::linear("sweep", chain);
        return runtime.invokeChainSync(spec, placement).value();
    }
};

TEST_P(ChainSweep, IpcBeatsHttpAndEdgesArePositive)
{
    const auto p = GetParam();
    const auto mol = run(true, p.length, p.cross);
    const auto base = run(false, p.length, p.cross);
    EXPECT_LT(mol.endToEnd, base.endToEnd);
    ASSERT_EQ(mol.edgeLatencies.size(), std::size_t(p.length) - 1);
    for (const auto &edge : mol.edgeLatencies) {
        EXPECT_GT(edge.raw(), 0);
        EXPECT_LT(edge.toMilliseconds(), 2.0);
    }
    if (p.length >= 3) {
        const auto shorter = run(true, p.length - 1, p.cross);
        EXPECT_LT(shorter.endToEnd, mol.endToEnd);
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainSweep,
                         ::testing::Values(ChainCase{2, false},
                                           ChainCase{3, false},
                                           ChainCase{4, true},
                                           ChainCase{5, false},
                                           ChainCase{5, true}));

// ---------------------------------------------------------------------
// Sweep 3: startup paths x PU generations. Invariant: each cfork
// optimization stage is at least as fast as the previous one, on
// every PU kind.
// ---------------------------------------------------------------------

class StartupSweep
    : public ::testing::TestWithParam<std::tuple<DpuGeneration, int>>
{
  protected:
    static sim::SimTime
    startup(DpuGeneration gen, int pu, sandbox::StartupPath path,
            bool cfork)
    {
        sim::Simulation sim;
        auto computer = hw::buildCpuDpuServer(sim, 1, gen);
        MoleculeOptions options;
        options.startup.useCfork = cfork;
        options.startup.cforkPath = path;
        options.managerPu = pu;
        Molecule runtime(*computer, options);
        runtime.registerCpuFunction("image-resize",
                                    {PuType::HostCpu, PuType::Dpu});
        runtime.start();
        return runtime.invokeSync("image-resize", pu).value().startup;
    }
};

TEST_P(StartupSweep, OptimizationLadderIsMonotone)
{
    const auto [gen, pu] = GetParam();
    using sandbox::StartupPath;
    const auto baseline =
        startup(gen, pu, StartupPath::ColdBoot, false);
    const auto naive = startup(gen, pu, StartupPath::CforkNaive, true);
    const auto func =
        startup(gen, pu, StartupPath::CforkFuncContainer, true);
    const auto opt =
        startup(gen, pu, StartupPath::CforkCpusetOpt, true);
    EXPECT_LT(naive, baseline);
    EXPECT_LT(func, naive);
    EXPECT_LT(opt, func);
}

INSTANTIATE_TEST_SUITE_P(
    Pus, StartupSweep,
    ::testing::Values(std::make_tuple(DpuGeneration::Bf1, 0),
                      std::make_tuple(DpuGeneration::Bf1, 1),
                      std::make_tuple(DpuGeneration::Bf2, 1)));

// ---------------------------------------------------------------------
// Sweep 4: FPGA chains over lengths x payloads. Invariant: zero-copy
// never loses to copying, and the saving grows with chain length.
// ---------------------------------------------------------------------

class FpgaChainSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
  protected:
    static sim::SimTime
    chain(int length, bool shm, std::uint64_t bytes)
    {
        sim::Simulation sim;
        auto computer = hw::buildF1Server(sim, 1);
        Molecule runtime(*computer, MoleculeOptions{});
        runtime.registerFpgaFunction("fpga-vecstage");
        runtime.start();
        std::vector<std::string> fns(std::size_t(length),
                                     "fpga-vecstage");
        obs::ChainRecord rec;
        auto run = [](Molecule *m, std::vector<std::string> c, bool s,
                      std::uint64_t b,
                      obs::ChainRecord *out) -> sim::Task<> {
            *out = co_await m->dag().runFpgaChain(c, 0, s, b);
        };
        runtime.simulation().spawn(run(&runtime, fns, shm, bytes, &rec));
        runtime.simulation().run();
        return rec.endToEnd;
    }
};

TEST_P(FpgaChainSweep, ZeroCopyNeverLoses)
{
    const auto [length, bytes] = GetParam();
    const auto copying = chain(length, false, bytes);
    const auto shm = chain(length, true, bytes);
    EXPECT_LE(shm, copying);
    if (length >= 2) {
        // The absolute saving is at least one DMA round per hop.
        const double savedUs =
            copying.toMicroseconds() - shm.toMicroseconds();
        EXPECT_GT(savedUs, 100.0 * (length - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndSizes, FpgaChainSweep,
    ::testing::Values(std::make_tuple(1, 4096ULL),
                      std::make_tuple(2, 4096ULL),
                      std::make_tuple(3, 65536ULL),
                      std::make_tuple(5, 4096ULL),
                      std::make_tuple(5, 1048576ULL)));

// ---------------------------------------------------------------------
// Sweep 5: the full transport x size grid, evaluated in parallel on
// the SweepRunner. Each grid point is an independent simulation
// replica, so a threaded sweep must (a) reproduce the serial results
// bit for bit and (b) satisfy the transport ordering at every point.
// ---------------------------------------------------------------------

TEST(ParallelSweep, NipcGridMatchesSerialBitForBit)
{
    struct Point
    {
        TransportKind kind;
        std::uint64_t bytes;
    };
    const TransportKind kinds[] = {TransportKind::Fifo,
                                   TransportKind::Mpsc,
                                   TransportKind::MpscPoll};
    const std::uint64_t sizes[] = {16, 64, 256, 1024, 4096};
    std::vector<Point> grid;
    for (auto k : kinds)
        for (auto b : sizes)
            grid.push_back({k, b});

    struct MeasureFixture : NipcSweep
    {
        using NipcSweep::measure;
    };
    std::vector<std::int64_t> serial;
    for (const auto &p : grid)
        serial.push_back(
            MeasureFixture::measure(p.kind, p.bytes).raw());

    sim::SweepRunner pool;
    auto threaded = pool.map<std::int64_t>(
        grid.size(), [&](std::size_t i) {
            return MeasureFixture::measure(grid[i].kind,
                                           grid[i].bytes)
                .raw();
        });
    EXPECT_EQ(serial, threaded);

    // Transport ordering (Poll < Mpsc < Fifo) at every grid size.
    const std::size_t n = std::size(sizes);
    for (std::size_t s = 0; s < n; ++s) {
        const auto fifo = threaded[0 * n + s];
        const auto mpsc = threaded[1 * n + s];
        const auto poll = threaded[2 * n + s];
        EXPECT_LT(poll, mpsc) << "size " << sizes[s];
        EXPECT_LT(mpsc, fifo) << "size " << sizes[s];
    }
}

} // namespace
