/**
 * @file
 * Security and conservation invariants, parameterized where the
 * property must hold across a space of inputs:
 *
 *  - capability security: no XPU-FIFO operation succeeds without the
 *    matching permission bit, for every permission combination;
 *  - memory conservation: physical memory on a PU returns to its
 *    baseline after any create/destroy sequence;
 *  - FIFO ordering: messages arrive in write order across PUs;
 *  - keep-alive: the warm pool never exceeds capacity under any
 *    policy.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "xpu/client.hh"

namespace {

using namespace molecule;
using core::KeepAliveConfig;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using core::Errc;
using xpu::Perm;
using xpu::TransportKind;

// ---------------------------------------------------------------------
// Capability security, parameterized over granted permission sets.
// ---------------------------------------------------------------------

class CapabilitySecurity : public ::testing::TestWithParam<Perm>
{
  protected:
    struct World
    {
        sim::Simulation sim;
        std::unique_ptr<hw::Computer> computer =
            hw::buildCpuDpuServer(sim, 1, hw::DpuGeneration::Bf1);
        os::LocalOs cpuOs{computer->pu(0)};
        os::LocalOs dpuOs{computer->pu(1)};
        xpu::XpuShimNetwork net{*computer};
        xpu::XpuShim *cpuShim = net.addShim(cpuOs, TransportKind::Fifo);
        xpu::XpuShim *dpuShim =
            net.addShim(dpuOs, TransportKind::MpscPoll);
        os::Process *owner = nullptr;
        os::Process *other = nullptr;
        std::unique_ptr<xpu::XpuClient> ownerClient;
        std::unique_ptr<xpu::XpuClient> otherClient;

        World()
        {
            auto boot = [](World *w) -> sim::Task<> {
                w->owner =
                    co_await w->cpuOs.spawnProcess("owner", 1 << 20);
                w->other =
                    co_await w->dpuOs.spawnProcess("other", 1 << 20);
            };
            sim.spawn(boot(this));
            sim.run();
            ownerClient =
                std::make_unique<xpu::XpuClient>(*cpuShim, *owner);
            otherClient =
                std::make_unique<xpu::XpuClient>(*dpuShim, *other);
        }
    };
};

TEST_P(CapabilitySecurity, OperationsMatchGrantedBits)
{
    const Perm granted = GetParam();
    World w;

    core::Status writeStatus, readStatus;
    auto scenario = [](World *world, Perm perm, core::Status *ws,
                       core::Status *rs) -> sim::Task<> {
        auto f = co_await world->ownerClient->xfifoInit("guarded");
        const auto obj = world->ownerClient->objectOf(f.value());
        if (perm != Perm::None) {
            (void)co_await world->ownerClient->grantCap(
                world->otherClient->xpuPid(), obj, perm);
        }
        auto ofd = co_await world->otherClient->xfifoConnect("guarded");
        if (!ofd.ok()) {
            *ws = ofd.status();
            *rs = ofd.status();
            co_return;
        }
        *ws = co_await world->otherClient->xfifoWrite(ofd.value(), 64,
                                                      "m");
        if (ws->ok()) {
            // Drain so a read check can't block forever.
            auto r = co_await world->ownerClient->xfifoRead(f.value());
            EXPECT_TRUE(r.ok());
        }
        // Read permission check (non-blocking expectation: only test
        // the denial path; permitted reads would block on empty).
        if (!hasPerm(perm, Perm::Read)) {
            auto r =
                co_await world->otherClient->xfifoRead(ofd.value());
            *rs = r.status();
        } else {
            *rs = core::Status();
        }
    };
    w.sim.spawn(scenario(&w, granted, &writeStatus, &readStatus));
    w.sim.run();

    if (granted == Perm::None) {
        EXPECT_EQ(writeStatus.code(), Errc::NoPermission);
    } else if (hasPerm(granted, Perm::Write)) {
        EXPECT_TRUE(writeStatus.ok()) << writeStatus.toString();
    } else {
        EXPECT_EQ(writeStatus.code(), Errc::NoPermission);
    }
    if (!hasPerm(granted, Perm::Read) && granted != Perm::None) {
        EXPECT_EQ(readStatus.code(), Errc::NoPermission);
    }
}

INSTANTIATE_TEST_SUITE_P(PermSets, CapabilitySecurity,
                         ::testing::Values(Perm::None, Perm::Read,
                                           Perm::Write,
                                           Perm::Read | Perm::Write));

// ---------------------------------------------------------------------
// Memory conservation through arbitrary lifecycle sequences.
// ---------------------------------------------------------------------

TEST(MemoryConservation, CreateDestroyReturnsToBaseline)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 1,
                                          hw::DpuGeneration::Bf1);
    MoleculeOptions options;
    options.startup.warmCapacity = 0; // destroy on release
    Molecule runtime(*computer, options);
    runtime.registerCpuFunction("image-resize",
                                {PuType::HostCpu, PuType::Dpu});
    runtime.start();
    const auto baseline = computer->pu(0).memoryUsed();

    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 4; ++i)
            (void)runtime.invokeSync("image-resize", 0);
        EXPECT_EQ(computer->pu(0).memoryUsed(), baseline)
            << "round " << round;
    }
}

TEST(MemoryConservation, WarmInstancesHoldExactlyTheirFootprint)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 1,
                                          hw::DpuGeneration::Bf1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerCpuFunction("image-resize",
                                {PuType::HostCpu, PuType::Dpu});
    runtime.start();
    const auto baseline = computer->pu(0).memoryUsed();
    (void)runtime.invokeSync("image-resize", 0);
    const auto &img = runtime.catalog().cpu("image-resize").image;
    // One cfork'd warm instance: private heap plus the COW pages its
    // first execution dirtied (the runtime region itself stays shared
    // with the template, already in the baseline).
    const auto cowBytes = std::uint64_t(
        double(img.mem.runtimeShared) * img.cowTouchFraction);
    EXPECT_EQ(computer->pu(0).memoryUsed() - baseline,
              img.mem.privateBytes + cowBytes);
}

// ---------------------------------------------------------------------
// Cross-PU FIFO ordering.
// ---------------------------------------------------------------------

TEST(FifoOrdering, CrossPuMessagesArriveInWriteOrder)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 1,
                                          hw::DpuGeneration::Bf1);
    os::LocalOs cpuOs{computer->pu(0)};
    os::LocalOs dpuOs{computer->pu(1)};
    xpu::XpuShimNetwork net{*computer};
    auto *cpuShim = net.addShim(cpuOs, TransportKind::Fifo);
    auto *dpuShim = net.addShim(dpuOs, TransportKind::MpscPoll);

    os::Process *r = nullptr, *w = nullptr;
    auto boot = [](os::LocalOs *a, os::LocalOs *b, os::Process **rp,
                   os::Process **wp) -> sim::Task<> {
        *rp = co_await a->spawnProcess("r", 1 << 20);
        *wp = co_await b->spawnProcess("w", 1 << 20);
    };
    sim.spawn(boot(&cpuOs, &dpuOs, &r, &w));
    sim.run();
    xpu::XpuClient reader(*cpuShim, *r);
    xpu::XpuClient writer(*dpuShim, *w);

    std::vector<std::string> received;
    auto scenario = [](xpu::XpuClient *rd, xpu::XpuClient *wr,
                       std::vector<std::string> *out) -> sim::Task<> {
        auto fd = co_await rd->xfifoInit("ordered");
        (void)co_await rd->grantCap(wr->xpuPid(),
                                    rd->objectOf(fd.value()),
                                    Perm::Write);
        auto wfd = co_await wr->xfifoConnect("ordered");
        for (int i = 0; i < 8; ++i) {
            std::string tag = "msg" + std::to_string(i);
            (void)co_await wr->xfifoWrite(wfd.value(), 64, tag);
        }
        for (int i = 0; i < 8; ++i) {
            auto msg = co_await rd->xfifoRead(fd.value());
            out->push_back(msg.value().tag);
        }
    };
    sim.spawn(scenario(&reader, &writer, &received));
    sim.run();
    ASSERT_EQ(received.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(received[std::size_t(i)],
                  "msg" + std::to_string(i));
}

// ---------------------------------------------------------------------
// Keep-alive capacity invariant under both policies.
// ---------------------------------------------------------------------

class KeepAliveSweep
    : public ::testing::TestWithParam<KeepAliveConfig::Kind>
{
};

TEST_P(KeepAliveSweep, PoolNeverExceedsCapacity)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 1,
                                          hw::DpuGeneration::Bf1);
    MoleculeOptions options;
    options.startup.warmCapacity = 3;
    options.startup.keepAlive.kind = GetParam();
    Molecule runtime(*computer, options);
    runtime.registerCpuFunction("helloworld", {PuType::HostCpu});
    runtime.start();
    for (int i = 0; i < 10; ++i) {
        (void)runtime.invokeSync("helloworld", 0);
        EXPECT_LE(runtime.startup().warmCount("helloworld", 0), 3u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, KeepAliveSweep,
    ::testing::Values(KeepAliveConfig::Kind::Lru,
                      KeepAliveConfig::Kind::GreedyDual,
                      KeepAliveConfig::Kind::Histogram));

} // namespace
