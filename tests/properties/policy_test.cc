/**
 * @file
 * Policy-layer determinism suite.
 *
 * The policy seams (PlacementPolicy, KeepAliveStrategy) widen the
 * space of runtime behaviors; this suite pins the two properties that
 * keep the repo's replayability story intact across that space:
 *
 *  - policy swap does not perturb: installing the default policies
 *    explicitly yields the exact (placement, eviction, startup) digest
 *    triple of a runtime that never touched the policy knobs — the
 *    goldens in determinism_test keep guarding the default path;
 *  - per-policy replay: for every placement x keep-alive combo, the
 *    digest triple is bit-identical serial vs re-run vs SweepRunner
 *    worker threads;
 *  - the policies genuinely diverge under load (different digests),
 *    so the combos raced by policy_report are distinct behaviors, not
 *    five names for one.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "sim/sweep.hh"
#include "workloads/loadgen.hh"

namespace {

using namespace molecule;
using core::KeepAliveConfig;
using core::Molecule;
using core::MoleculeOptions;
using core::PlacementConfig;
using hw::PuType;
using workloads::LoadGenerator;

struct Triple
{
    std::uint64_t place = 0;
    std::uint64_t evict = 0;
    std::uint64_t startup = 0;

    bool
    operator==(const Triple &o) const
    {
        return place == o.place && evict == o.evict &&
               startup == o.startup;
    }
};

sim::Task<>
fire(Molecule *m, std::string fn)
{
    (void)co_await m->invoke(fn, -1); // -1: the scheduler picks
}

sim::Task<>
drive(Molecule *m, const std::vector<workloads::TraceEvent> *events)
{
    auto &s = m->simulation();
    for (const auto &ev : *events) {
        if (ev.at > s.now())
            co_await s.delay(ev.at - s.now());
        // Open loop: arrivals overlap, so in-flight counts and warm
        // pools actually exercise the policies.
        s.spawn(fire(m, ev.fn));
    }
}

/**
 * One seeded burst against a CPU+2xDPU server: 200 req/s of a
 * Zipf-skewed FunctionBench mix with a tight warm budget, so
 * placement sees saturation and keep-alive sees eviction churn.
 * @p explicitPolicies false leaves MoleculeOptions untouched.
 */
Triple
runScenario(std::uint64_t seed, const PlacementConfig &placement,
            const KeepAliveConfig &keepAlive,
            bool explicitPolicies = true)
{
    sim::Simulation sim(seed);
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    MoleculeOptions options;
    if (explicitPolicies) {
        options.placement = placement;
        options.startup.keepAlive = keepAlive;
    }
    options.startup.globalWarmCapacityPerPu = 2;
    Molecule runtime(*computer, options);
    const std::vector<std::string> fns{"helloworld", "pyaes", "dd",
                                       "gzip-compression"};
    for (const auto &fn : fns)
        runtime.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    runtime.start();

    sim::Rng traceRng(seed);
    LoadGenerator::Options lg;
    lg.requestsPerSecond = 200;
    lg.zipfExponent = 1.1;
    lg.duration = sim::SimTime::seconds(5);
    LoadGenerator gen(traceRng, fns, lg);
    const auto trace = gen.generate();
    sim.spawn(drive(&runtime, &trace));
    sim.run();

    Triple t;
    t.place = runtime.scheduler().placementDigest();
    t.evict = runtime.startup().evictionDigest();
    sim::Fingerprint fp;
    fp.mix(std::uint64_t(runtime.startup().coldStarts()));
    fp.mix(std::uint64_t(runtime.startup().warmHits()));
    fp.mix(std::uint64_t(runtime.startup().evictions()));
    t.startup = fp.digest();
    return t;
}

struct Combo
{
    const char *label;
    PlacementConfig placement;
    KeepAliveConfig keepAlive;
};

std::vector<Combo>
combos()
{
    return {
        {"po+lru", PlacementConfig::priceOrdered(),
         KeepAliveConfig::lru()},
        {"la+lru", PlacementConfig::loadAware(),
         KeepAliveConfig::lru()},
        {"lo+lru", PlacementConfig::locality(),
         KeepAliveConfig::lru()},
        {"po+gd", PlacementConfig::priceOrdered(),
         KeepAliveConfig::greedyDual()},
        {"po+hist", PlacementConfig::priceOrdered(),
         KeepAliveConfig::histogram()},
    };
}

TEST(PolicyDeterminism, SwapDoesNotPerturbTheDefaultPath)
{
    for (std::uint64_t seed : {42ull, 7ull}) {
        const Triple implicit =
            runScenario(seed, PlacementConfig::priceOrdered(),
                        KeepAliveConfig::lru(), false);
        const Triple explicitDefaults =
            runScenario(seed, PlacementConfig::priceOrdered(),
                        KeepAliveConfig::lru(), true);
        EXPECT_EQ(implicit, explicitDefaults) << "seed " << seed;
    }
}

TEST(PolicyDeterminism, TripleStableSerialRerunAndSweepRunner)
{
    const auto race = combos();
    const std::uint64_t seed = 42;

    std::vector<Triple> serial;
    for (const auto &c : race)
        serial.push_back(runScenario(seed, c.placement, c.keepAlive));

    for (std::size_t i = 0; i < race.size(); ++i)
        EXPECT_EQ(serial[i],
                  runScenario(seed, race[i].placement,
                              race[i].keepAlive))
            << race[i].label << " differs on re-run";

    sim::SweepRunner pool;
    const auto swept = pool.map<Triple>(
        race.size(), [&](std::size_t i) {
            return runScenario(seed, race[i].placement,
                               race[i].keepAlive);
        });
    for (std::size_t i = 0; i < race.size(); ++i)
        EXPECT_EQ(serial[i], swept[i])
            << race[i].label << " differs under SweepRunner";
}

TEST(PolicyDeterminism, PlacementPoliciesDivergeUnderLoad)
{
    // 200 req/s against 8 ARM cores saturates the first DPU, so the
    // spill policy must take different decisions than the default.
    const Triple po = runScenario(42, PlacementConfig::priceOrdered(),
                                  KeepAliveConfig::lru());
    const Triple la = runScenario(42, PlacementConfig::loadAware(),
                                  KeepAliveConfig::lru());
    EXPECT_NE(po.place, la.place);
}

TEST(PolicyDeterminism, KeepAliveStrategiesDivergeUnderChurn)
{
    // Warm budget 2 across 4 functions: eviction order is exercised
    // constantly, and the three strategies order it differently.
    const Triple lru = runScenario(7, PlacementConfig::priceOrdered(),
                                   KeepAliveConfig::lru());
    const Triple gd = runScenario(7, PlacementConfig::priceOrdered(),
                                  KeepAliveConfig::greedyDual());
    EXPECT_NE(lru.evict, gd.evict);
}

TEST(PolicyDeterminism, SeedsProduceDistinctRuns)
{
    const Triple a = runScenario(42, PlacementConfig::loadAware(),
                                 KeepAliveConfig::lru());
    const Triple b = runScenario(7, PlacementConfig::loadAware(),
                                 KeepAliveConfig::lru());
    EXPECT_NE(a.place, b.place);
}

} // namespace
