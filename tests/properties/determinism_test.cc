/**
 * @file
 * Determinism properties: for a fixed seed, every experiment in this
 * repository is bit-reproducible. These tests run representative
 * scenarios twice (and with different seeds) and compare raw results.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "sim/stats.hh"
#include "hw/computer.hh"
#include "workloads/catalog.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using workloads::Catalog;

/** One full cold+warm+chain scenario; returns a latency fingerprint. */
std::vector<std::int64_t>
scenario(std::uint64_t seed)
{
    sim::Simulation sim(seed);
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerCpuFunction("helloworld",
                                {PuType::HostCpu, PuType::Dpu});
    for (const auto &fn : Catalog::alexaChain())
        runtime.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    runtime.start();

    std::vector<std::int64_t> fingerprint;
    auto cold = runtime.invokeSync("helloworld", 0);
    fingerprint.push_back(cold.endToEnd.raw());
    auto warm = runtime.invokeSync("helloworld", 0);
    fingerprint.push_back(warm.endToEnd.raw());
    auto remote = runtime.invokeSync("helloworld", 1);
    fingerprint.push_back(remote.startup.raw());

    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    std::vector<int> cross{0, 1, 0, 1, 0};
    auto rec = runtime.invokeChainSync(spec, cross);
    fingerprint.push_back(rec.endToEnd.raw());
    for (const auto &edge : rec.edgeLatencies)
        fingerprint.push_back(edge.raw());
    return fingerprint;
}

TEST(Determinism, SameSeedSameFingerprint)
{
    EXPECT_EQ(scenario(42), scenario(42));
    EXPECT_EQ(scenario(7), scenario(7));
}

TEST(Determinism, DifferentSeedsDifferOnlyInJitter)
{
    // Jitter only perturbs link transfers; the fingerprints must be
    // close (within the 3-sigma jitter envelope) but not identical.
    auto a = scenario(1), b = scenario(2);
    ASSERT_EQ(a.size(), b.size());
    bool anyDifferent = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        anyDifferent |= (a[i] != b[i]);
        EXPECT_NEAR(double(a[i]), double(b[i]),
                    0.15 * double(std::max(a[i], b[i])) + 1000.0);
    }
    EXPECT_TRUE(anyDifferent);
}

TEST(Determinism, RngStreamIndependentOfQueryOrder)
{
    // Reading stats between runs must not consume simulation
    // randomness: two runs with interleaved histogram queries agree.
    sim::Simulation s1(5), s2(5);
    sim::Histogram h;
    for (int i = 0; i < 100; ++i) {
        const double v = s1.rng().uniform();
        h.add(v);
        (void)h.percentile(50); // query mid-stream
        EXPECT_EQ(v, s2.rng().uniform());
    }
}

} // namespace
