/**
 * @file
 * Determinism properties: for a fixed seed, every experiment in this
 * repository is bit-reproducible. These tests run representative
 * scenarios twice (and with different seeds) and compare raw results.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "sim/stats.hh"
#include "sim/sweep.hh"
#include "hw/computer.hh"
#include "workloads/catalog.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using workloads::Catalog;

/** One full cold+warm+chain scenario; returns a latency fingerprint.
 * @param conflictsOut when non-null, the run executes with the
 * sim-time conflict detector enabled and reports its conflict count. */
std::vector<std::int64_t>
scenario(std::uint64_t seed, std::size_t *conflictsOut = nullptr)
{
    sim::Simulation sim(seed);
    (void)conflictsOut; // only consulted when analysis is compiled in
#if MOLECULE_DETERMINISM_ANALYSIS
    if (conflictsOut)
        sim.enableConflictTracking();
#endif
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerCpuFunction("helloworld",
                                {PuType::HostCpu, PuType::Dpu});
    for (const auto &fn : Catalog::alexaChain())
        runtime.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    runtime.start();

    std::vector<std::int64_t> fingerprint;
    auto cold = runtime.invokeSync("helloworld", 0).value();
    fingerprint.push_back(cold.endToEnd.raw());
    auto warm = runtime.invokeSync("helloworld", 0).value();
    fingerprint.push_back(warm.endToEnd.raw());
    auto remote = runtime.invokeSync("helloworld", 1).value();
    fingerprint.push_back(remote.startup.raw());

    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    std::vector<int> cross{0, 1, 0, 1, 0};
    auto rec = runtime.invokeChainSync(spec, cross).value();
    fingerprint.push_back(rec.endToEnd.raw());
    for (const auto &edge : rec.edgeLatencies)
        fingerprint.push_back(edge.raw());
#if MOLECULE_DETERMINISM_ANALYSIS
    if (conflictsOut)
        *conflictsOut = sim.accessLog()->findConflicts().size();
#endif
    return fingerprint;
}

/** FNV-1a digest of a full scenario trace. */
std::uint64_t
traceDigest(std::uint64_t seed)
{
    sim::Fingerprint fp;
    for (auto v : scenario(seed))
        fp.mix(static_cast<std::uint64_t>(v));
    return fp.digest();
}

TEST(Determinism, SameSeedSameFingerprint)
{
    EXPECT_EQ(scenario(42), scenario(42));
    EXPECT_EQ(scenario(7), scenario(7));
}

// Golden digests captured on the pre-rewrite (tombstone + std::function
// priority_queue) DES kernel. The allocation-free queue — and any
// future kernel change — must reproduce the simulated results bit for
// bit: same seed, same digest, forever. If a change legitimately
// alters the cost models (not the kernel), recapture these constants
// and say so in the commit.
TEST(Determinism, GoldenTraceDigestMatchesPreRewriteKernel)
{
    EXPECT_EQ(traceDigest(42), 0x582305e76012b3f7ULL);
    EXPECT_EQ(traceDigest(7), 0x2dacb53306886fbcULL);
    EXPECT_EQ(traceDigest(1), 0x799fabc445a22749ULL);
}

// The same golden digests must hold when the scenarios run as replicas
// on the multi-threaded SweepRunner: thread interleaving must not be
// able to touch simulated results.
TEST(Determinism, GoldenTraceDigestHoldsUnderSweepRunner)
{
    const std::uint64_t seeds[] = {42, 7, 1, 42, 7, 1, 42, 7, 1};
    const std::uint64_t golden[] = {
        0x582305e76012b3f7ULL, 0x2dacb53306886fbcULL,
        0x799fabc445a22749ULL, 0x582305e76012b3f7ULL,
        0x2dacb53306886fbcULL, 0x799fabc445a22749ULL,
        0x582305e76012b3f7ULL, 0x2dacb53306886fbcULL,
        0x799fabc445a22749ULL};
    sim::SweepRunner pool;
    auto digests = pool.map<std::uint64_t>(
        std::size(seeds),
        [&](std::size_t i) { return traceDigest(seeds[i]); });
    for (std::size_t i = 0; i < std::size(seeds); ++i)
        EXPECT_EQ(digests[i], golden[i]) << "replica " << i;
}

#if MOLECULE_DETERMINISM_ANALYSIS
// The conflict detector is an observer: with tracking enabled the full
// scenario must (a) report zero same-tick conflicts — the shipped
// model state never depends on the schedule-sequence tie-break — and
// (b) reproduce the exact golden digests, i.e. observation does not
// perturb the simulation.
TEST(Determinism, ConflictTrackingIsCleanAndNonPerturbing)
{
    const std::pair<std::uint64_t, std::uint64_t> golden[] = {
        {42, 0x582305e76012b3f7ULL},
        {7, 0x2dacb53306886fbcULL},
        {1, 0x799fabc445a22749ULL},
    };
    for (const auto &[seed, digest] : golden) {
        std::size_t conflicts = 0;
        sim::Fingerprint fp;
        for (auto v : scenario(seed, &conflicts))
            fp.mix(static_cast<std::uint64_t>(v));
        EXPECT_EQ(conflicts, 0u) << "seed " << seed;
        EXPECT_EQ(fp.digest(), digest) << "seed " << seed;
    }
}
#endif

TEST(Determinism, DifferentSeedsDifferOnlyInJitter)
{
    // Jitter only perturbs link transfers; the fingerprints must be
    // close (within the 3-sigma jitter envelope) but not identical.
    auto a = scenario(1), b = scenario(2);
    ASSERT_EQ(a.size(), b.size());
    bool anyDifferent = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        anyDifferent |= (a[i] != b[i]);
        EXPECT_NEAR(double(a[i]), double(b[i]),
                    0.15 * double(std::max(a[i], b[i])) + 1000.0);
    }
    EXPECT_TRUE(anyDifferent);
}

TEST(Determinism, RngStreamIndependentOfQueryOrder)
{
    // Reading stats between runs must not consume simulation
    // randomness: two runs with interleaved histogram queries agree.
    sim::Simulation s1(5), s2(5);
    sim::Histogram h;
    for (int i = 0; i < 100; ++i) {
        const double v = s1.rng().uniform();
        h.add(v);
        (void)h.percentile(50); // query mid-stream
        EXPECT_EQ(v, s2.rng().uniform());
    }
}

} // namespace
