/**
 * @file
 * Property tests for the load module (alongside prop_sweep_test):
 * randomized TraceSpecs round-trip through serialize/parse exactly,
 * and their streams are bit-identical across SweepRunner replicas.
 */

#include <gtest/gtest.h>

#include "load/generator.hh"
#include "sim/random.hh"
#include "sim/sweep.hh"

namespace {

using namespace molecule;
using load::ArrivalKind;
using load::TraceSpec;
using sim::SimTime;

/** A randomized but valid spec, derived purely from @p rng. */
TraceSpec
randomSpec(sim::Rng &rng)
{
    TraceSpec spec;
    spec.seed = std::uint64_t(rng.uniformInt(0, 1 << 20));
    spec.ratePerSecond = 50.0 + rng.uniform() * 5000.0;
    spec.duration =
        SimTime::fromSeconds(0.1 + rng.uniform() * 2.0);
    spec.arrival = static_cast<ArrivalKind>(rng.uniformInt(0, 2));
    spec.burstFactor = 1.0 + rng.uniform() * 15.0;
    spec.meanDwellBase =
        SimTime::fromSeconds(0.05 + rng.uniform() * 2.0);
    spec.meanDwellBurst =
        SimTime::fromSeconds(0.01 + rng.uniform() * 0.5);
    spec.diurnalAmplitude = rng.uniform() * 0.95;
    spec.diurnalPeriod =
        SimTime::fromSeconds(0.2 + rng.uniform() * 5.0);
    const int fns = int(rng.uniformInt(0, 12));
    for (int i = 0; i < fns; ++i)
        spec.functions.push_back("fn-" + std::to_string(i));
    const int tenants = int(rng.uniformInt(0, 4));
    for (int i = 0; i < tenants; ++i) {
        load::TenantSpec t;
        t.name = "tenant-" + std::to_string(i);
        t.share = 0.1 + rng.uniform() * 5.0;
        t.zipfExponent = rng.uniform() * 2.0;
        t.permuteSalt = std::uint64_t(rng.uniformInt(0, 1 << 16));
        spec.tenants.push_back(t);
    }
    return spec;
}

TEST(LoadPropertyTest, RandomSpecsRoundTripExactly)
{
    sim::Rng rng(20260808);
    for (int trial = 0; trial < 200; ++trial) {
        const TraceSpec spec = randomSpec(rng);
        const auto parsed = TraceSpec::parse(spec.serialize());
        ASSERT_TRUE(parsed.ok())
            << "trial " << trial << ": " << parsed.error().detail();
        ASSERT_TRUE(parsed.value() == spec)
            << "trial " << trial << " did not round-trip:\n"
            << spec.serialize();
        // The reparsed spec generates the identical stream.
        ASSERT_EQ(load::streamDigest(parsed.value()),
                  load::streamDigest(spec))
            << "trial " << trial;
    }
}

TEST(LoadPropertyTest, StreamsAreBitIdenticalUnderSweepRunner)
{
    // A spread of specs covering all three arrival processes.
    sim::Rng rng(4242);
    std::vector<TraceSpec> specs;
    for (int i = 0; i < 24; ++i)
        specs.push_back(randomSpec(rng));

    std::vector<std::uint64_t> serial;
    serial.reserve(specs.size());
    for (const auto &spec : specs)
        serial.push_back(load::streamDigest(spec));

    sim::SweepRunner pool;
    const auto threaded = pool.map<std::uint64_t>(
        specs.size(),
        [&](std::size_t i) { return load::streamDigest(specs[i]); });

    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], threaded[i])
            << "spec " << i << " arrival "
            << load::toString(specs[i].arrival);
}

TEST(LoadPropertyTest, OneSpecManyReplicasAgree)
{
    sim::Rng rng(777);
    const TraceSpec spec = randomSpec(rng);
    const std::uint64_t expected = load::streamDigest(spec);

    sim::SweepRunner pool;
    const auto digests = pool.map<std::uint64_t>(
        32, [&](std::size_t) { return load::streamDigest(spec); });
    for (std::uint64_t d : digests)
        EXPECT_EQ(d, expected);
}

} // namespace
