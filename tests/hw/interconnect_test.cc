/** @file Unit tests for links, routes and the computer topology. */

#include <gtest/gtest.h>

#include "hw/calibration.hh"
#include "hw/computer.hh"
#include "hw/interconnect.hh"

namespace {

namespace calib = molecule::hw::calib;
using molecule::hw::buildCpuDpuServer;
using molecule::hw::DpuGeneration;
using molecule::hw::Link;
using molecule::hw::LinkKind;
using molecule::hw::LinkParams;
using molecule::hw::Topology;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

TEST(Link, LatencyIsBasePlusBandwidthTerm)
{
    Simulation sim;
    LinkParams p = LinkParams::forKind(LinkKind::PcieRdma);
    Link link(sim, p);
    const auto zero = link.transferLatency(0);
    EXPECT_EQ(zero, calib::kRdmaBaseLatency);
    // 50 Gbps: 1 MiB should take ~168 us on the wire.
    const auto mib = link.transferLatency(1 << 20);
    const double usExpected =
        2.5 + double(1 << 20) * 8.0 / (50.0 * 1e9) * 1e6;
    EXPECT_NEAR(mib.toMicroseconds(), usExpected, 0.5);
}

TEST(Link, KindsHaveDistinctProfiles)
{
    // DMA has much higher per-descriptor latency than RDMA (55us vs
    // 2.5us); shmem is the cheapest.
    auto shm = LinkParams::forKind(LinkKind::Shmem);
    auto rdma = LinkParams::forKind(LinkKind::PcieRdma);
    auto dma = LinkParams::forKind(LinkKind::PcieDma);
    auto eth = LinkParams::forKind(LinkKind::Ethernet);
    EXPECT_LT(shm.baseLatency, rdma.baseLatency);
    EXPECT_LT(rdma.baseLatency, eth.baseLatency);
    EXPECT_LT(eth.baseLatency, dma.baseLatency);
}

Task<>
doTransfer(Topology &topo, int a, int b, std::uint64_t bytes,
           SimTime *out, Simulation &sim)
{
    co_await topo.transfer(a, b, bytes);
    *out = sim.now();
}

TEST(Topology, CpuDpuServerHasRdmaRoutes)
{
    Simulation sim;
    auto computer = buildCpuDpuServer(sim, 2, DpuGeneration::Bf1);
    EXPECT_EQ(computer->puCount(), 3);
    auto &topo = computer->topology();
    EXPECT_TRUE(topo.hasRoute(0, 1));
    EXPECT_TRUE(topo.hasRoute(1, 0));
    EXPECT_TRUE(topo.hasRoute(1, 2));
    EXPECT_TRUE(topo.hasRoute(0, 0));
    // host<->DPU is direct RDMA.
    EXPECT_TRUE(topo.route(0, 1).direct());
    // DPU<->DPU is CPU-intercepted: two hops + forwarding.
    const auto &r = topo.route(1, 2);
    EXPECT_EQ(r.hops.size(), 2u);
    EXPECT_EQ(r.forwardCost, calib::kCpuInterceptCost);
}

TEST(Topology, InterceptedRouteIsSlowerThanDirect)
{
    Simulation sim;
    auto computer = buildCpuDpuServer(sim, 2, DpuGeneration::Bf1);
    auto &topo = computer->topology();
    const auto direct = topo.transferLatency(0, 1, 4096);
    const auto hop2 = topo.transferLatency(1, 2, 4096);
    EXPECT_GT(hop2, direct * 1.9);
}

TEST(Topology, TransferAdvancesClockByLatency)
{
    Simulation sim;
    auto computer = buildCpuDpuServer(sim, 1, DpuGeneration::Bf1);
    auto &topo = computer->topology();
    SimTime done;
    sim.spawn(doTransfer(topo, 0, 1, 4096, &done, sim));
    sim.run();
    const auto expect = topo.transferLatency(0, 1, 4096);
    // within the 3% jitter envelope (3 sigma = 9%)
    EXPECT_NEAR(done.toMicroseconds(), expect.toMicroseconds(),
                expect.toMicroseconds() * 0.1);
}

TEST(Topology, MissingRouteIsDetected)
{
    Simulation sim;
    Topology topo(sim);
    EXPECT_FALSE(topo.hasRoute(3, 4));
}

TEST(Topology, LinkAccountsBytesMoved)
{
    Simulation sim;
    Link link(sim, LinkParams::forKind(LinkKind::Shmem));
    auto t = [](Link &l) -> Task<> { co_await l.transfer(100); };
    sim.spawn(t(link));
    sim.run();
    EXPECT_EQ(link.bytesMoved(), 100u);
}

} // namespace
