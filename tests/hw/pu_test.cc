/** @file Unit tests for the processing-unit model. */

#include <gtest/gtest.h>

#include "hw/computer.hh"
#include "hw/pu.hh"

namespace {

using molecule::hw::bluefield1Descriptor;
using molecule::hw::bluefield2Descriptor;
using molecule::hw::desktopI7Descriptor;
using molecule::hw::ProcessingUnit;
using molecule::hw::PuDescriptor;
using molecule::hw::PuType;
using molecule::hw::xeon8160Descriptor;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

TEST(Pu, CostScalingFollowsFactors)
{
    Simulation sim;
    ProcessingUnit bf1(sim, 1, bluefield1Descriptor(0));
    // swFactor 6.5, computeFactor 4.8 from the calibration table.
    EXPECT_EQ(bf1.swCost(10_ms), (10_ms) * 6.5);
    EXPECT_EQ(bf1.computeCost(10_ms), (10_ms) * 4.8);
}

TEST(Pu, HostIsTheReference)
{
    Simulation sim;
    ProcessingUnit host(sim, 0, xeon8160Descriptor());
    EXPECT_EQ(host.swCost(10_ms), 10_ms);
    EXPECT_EQ(host.computeCost(10_ms), 10_ms);
    EXPECT_EQ(host.netCost(10_ms), 10_ms);
}

TEST(Pu, Bf2SitsBetweenBf1AndHost)
{
    auto bf1 = bluefield1Descriptor(0);
    auto bf2 = bluefield2Descriptor(0);
    EXPECT_LT(bf2.computeFactor, bf1.computeFactor);
    EXPECT_GT(bf2.computeFactor, 1.0);
    EXPECT_LT(bf2.swFactor, bf1.swFactor);
    // Fig 14-d: BF-2 is 3x-4x better than BF-1.
    EXPECT_GE(bf1.computeFactor / bf2.computeFactor, 3.0);
    EXPECT_LE(bf1.computeFactor / bf2.computeFactor, 4.5);
}

Task<>
burst(ProcessingUnit &pu, SimTime host, std::vector<SimTime> *done)
{
    co_await pu.compute(host);
    done->push_back(pu.simulation().now());
}

TEST(Pu, CoresLimitConcurrency)
{
    Simulation sim;
    PuDescriptor d = desktopI7Descriptor();
    d.cores = 2;
    d.computeFactor = 1.0;
    ProcessingUnit pu(sim, 0, d);
    std::vector<SimTime> done;
    for (int i = 0; i < 4; ++i)
        sim.spawn(burst(pu, 10_ms, &done));
    sim.run();
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done[1], 10_ms);
    EXPECT_EQ(done[3], 20_ms);
}

TEST(Pu, ComputeScalesByFactor)
{
    Simulation sim;
    PuDescriptor d = bluefield1Descriptor(0);
    ProcessingUnit pu(sim, 0, d);
    std::vector<SimTime> done;
    sim.spawn(burst(pu, 10_ms, &done));
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], (10_ms) * 4.8);
}

TEST(Pu, MemoryAdmission)
{
    Simulation sim;
    PuDescriptor d = desktopI7Descriptor();
    d.memoryBytes = 1000;
    ProcessingUnit pu(sim, 0, d);
    EXPECT_TRUE(pu.tryAllocate(600));
    EXPECT_FALSE(pu.tryAllocate(600));
    EXPECT_EQ(pu.memoryUsed(), 600u);
    EXPECT_EQ(pu.memoryFree(), 400u);
    pu.free(600);
    EXPECT_TRUE(pu.tryAllocate(1000));
}

TEST(Pu, DescriptorsMatchPaperTestbeds)
{
    auto xeon = xeon8160Descriptor();
    EXPECT_EQ(xeon.cores, 96);
    EXPECT_DOUBLE_EQ(xeon.freqGhz, 2.1);
    EXPECT_EQ(xeon.type, PuType::HostCpu);

    auto bf1 = bluefield1Descriptor(0);
    EXPECT_EQ(bf1.cores, 16);
    EXPECT_DOUBLE_EQ(bf1.freqGhz, 0.8);
    EXPECT_EQ(bf1.type, PuType::Dpu);

    auto bf2 = bluefield2Descriptor(1);
    EXPECT_DOUBLE_EQ(bf2.freqGhz, 2.75);
    EXPECT_EQ(bf2.name, "bf2-dpu1");
}

} // namespace
