/** @file Unit tests for the GPU device model (generality path). */

#include <gtest/gtest.h>

#include "hw/calibration.hh"
#include "hw/gpu.hh"

namespace {

namespace calib = molecule::hw::calib;
using molecule::hw::GpuDevice;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

Task<>
load(GpuDevice &gpu, std::string fn)
{
    co_await gpu.loadModule(fn);
}

Task<>
launchIt(GpuDevice &gpu, std::string fn, SimTime t,
         std::vector<SimTime> *done, Simulation &sim)
{
    co_await gpu.launch(fn, t);
    done->push_back(sim.now());
}

TEST(Gpu, FirstLoadPaysContextCreation)
{
    Simulation sim;
    GpuDevice gpu(sim, 0, 0, 4);
    sim.spawn(load(gpu, "vecadd"));
    sim.run();
    EXPECT_EQ(sim.now(),
              calib::kGpuContextCreateCost + calib::kGpuModuleLoadCost);
    const auto t1 = sim.now();
    sim.spawn(load(gpu, "vecmul"));
    sim.run();
    // Second module shares the MPS context.
    EXPECT_EQ(sim.now() - t1, calib::kGpuModuleLoadCost);
    EXPECT_EQ(gpu.residentCount(), 2u);
}

TEST(Gpu, MultipleModulesResidentConcurrently)
{
    Simulation sim;
    GpuDevice gpu(sim, 0, 0, 4);
    sim.spawn(load(gpu, "a"));
    sim.spawn(load(gpu, "b"));
    sim.run();
    EXPECT_TRUE(gpu.resident("a"));
    EXPECT_TRUE(gpu.resident("b"));
    gpu.unloadModule("a");
    EXPECT_FALSE(gpu.resident("a"));
    EXPECT_TRUE(gpu.resident("b"));
}

TEST(Gpu, KernelSlotsLimitConcurrency)
{
    Simulation sim;
    GpuDevice gpu(sim, 0, 0, 2);
    sim.spawn(load(gpu, "k"));
    sim.run();
    const auto t0 = sim.now();
    std::vector<SimTime> done;
    for (int i = 0; i < 4; ++i)
        sim.spawn(launchIt(gpu, "k", 1_ms, &done, sim));
    sim.run();
    ASSERT_EQ(done.size(), 4u);
    // 2 at a time: second pair lands ~2ms after t0.
    EXPECT_LT((done[1] - t0).toMilliseconds(), 1.1);
    EXPECT_GT((done[3] - t0).toMilliseconds(), 1.9);
    EXPECT_EQ(gpu.launchCount(), 4);
}

} // namespace
