/** @file Unit tests for the FPGA device model. */

#include <gtest/gtest.h>

#include "hw/calibration.hh"
#include "hw/fpga.hh"

namespace {

namespace calib = molecule::hw::calib;
using molecule::hw::FpgaDevice;
using molecule::hw::FpgaImage;
using molecule::hw::FpgaResources;
using molecule::hw::KernelSlot;
using molecule::hw::ProgramMode;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

FpgaImage
twoSlotImage()
{
    FpgaImage img;
    img.id = 1;
    img.slots.push_back(KernelSlot{"madd", {3600, 8000, 30, 60}, 0});
    img.slots.push_back(KernelSlot{"mmult", {9000, 9000, 30, 64}, 1});
    return img;
}

Task<>
programIt(FpgaDevice &dev, FpgaImage img, ProgramMode mode, bool retain)
{
    const molecule::core::Status st =
        co_await dev.program(std::move(img), mode, retain);
    EXPECT_TRUE(st.ok());
}

TEST(FpgaResources, ArithmeticAndFit)
{
    FpgaResources a{10, 20, 3, 4};
    FpgaResources b{5, 5, 1, 1};
    auto c = a + b;
    EXPECT_EQ(c.luts, 15);
    EXPECT_EQ(c.dsps, 5);
    EXPECT_TRUE(b.fitsIn(a));
    EXPECT_FALSE(a.fitsIn(b));
}

TEST(FpgaResources, WrapperIsFivePercentLuts)
{
    auto w = FpgaResources::wrapperOverhead();
    EXPECT_NEAR(double(w.luts) / double(calib::kF1TotalLuts), 0.05,
                1e-3);
}

TEST(Fpga, ProgramMakesFunctionsResident)
{
    Simulation sim;
    FpgaDevice dev(sim, 0, 0, FpgaResources::f1Totals(), 4);
    EXPECT_FALSE(dev.hasImage());
    sim.spawn(programIt(dev, twoSlotImage(), ProgramMode::Cold, false));
    sim.run();
    EXPECT_TRUE(dev.hasImage());
    EXPECT_TRUE(dev.resident("madd"));
    EXPECT_TRUE(dev.resident("mmult"));
    EXPECT_FALSE(dev.resident("mscale"));
    // Cold programming takes the calibrated load time (Fig 10-c).
    EXPECT_EQ(sim.now(), calib::kFpgaProgramColdCost);
}

TEST(Fpga, CachedProgramIsFaster)
{
    Simulation sim;
    FpgaDevice dev(sim, 0, 0, FpgaResources::f1Totals(), 4);
    sim.spawn(programIt(dev, twoSlotImage(), ProgramMode::Cached, false));
    sim.run();
    EXPECT_EQ(sim.now(), calib::kFpgaProgramCachedCost);
    EXPECT_LT(calib::kFpgaProgramCachedCost, calib::kFpgaProgramColdCost);
}

TEST(Fpga, EraseTakesSecondsAndDropsImage)
{
    Simulation sim;
    FpgaDevice dev(sim, 0, 0, FpgaResources::f1Totals(), 4);
    sim.spawn(programIt(dev, twoSlotImage(), ProgramMode::Cold, false));
    sim.run();
    auto e = [](FpgaDevice &d) -> Task<> { co_await d.erase(); };
    sim.spawn(e(dev));
    sim.run();
    EXPECT_FALSE(dev.hasImage());
    EXPECT_GT(calib::kFpgaEraseCost, 10_s);
    EXPECT_EQ(dev.eraseCount(), 1);
}

Task<>
invokeIt(FpgaDevice &dev, std::string fn, SimTime t,
         std::vector<SimTime> *done, Simulation &sim)
{
    co_await dev.invoke(fn, t);
    done->push_back(sim.now());
}

TEST(Fpga, DifferentSlotsRunConcurrently)
{
    Simulation sim;
    FpgaDevice dev(sim, 0, 0, FpgaResources::f1Totals(), 4);
    sim.spawn(programIt(dev, twoSlotImage(), ProgramMode::Cold, false));
    sim.run();
    const auto t0 = sim.now();
    std::vector<SimTime> done;
    sim.spawn(invokeIt(dev, "madd", 100_us, &done, sim));
    sim.spawn(invokeIt(dev, "mmult", 100_us, &done, sim));
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    // Both finish ~together: concurrent regions (vectorized start).
    EXPECT_EQ(done[0], done[1]);
    EXPECT_LT((done[0] - t0).toMicroseconds(), 150.0);
}

TEST(Fpga, SameSlotSerializes)
{
    Simulation sim;
    FpgaDevice dev(sim, 0, 0, FpgaResources::f1Totals(), 4);
    sim.spawn(programIt(dev, twoSlotImage(), ProgramMode::Cold, false));
    sim.run();
    const auto t0 = sim.now();
    std::vector<SimTime> done;
    sim.spawn(invokeIt(dev, "madd", 100_us, &done, sim));
    sim.spawn(invokeIt(dev, "madd", 100_us, &done, sim));
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GT((done[1] - t0).toMicroseconds(), 190.0);
}

TEST(Fpga, DramRetentionSurvivesReprogram)
{
    Simulation sim;
    FpgaDevice dev(sim, 0, 0, FpgaResources::f1Totals(), 4);
    sim.spawn(programIt(dev, twoSlotImage(), ProgramMode::Cold, false));
    sim.run();
    auto w = [](FpgaDevice &d) -> Task<> {
        co_await d.bankWrite(1, "payload", 4096);
    };
    sim.spawn(w(dev));
    sim.run();
    ASSERT_TRUE(dev.bankPeek(1, "payload").has_value());

    // Reprogram with retention: data survives (Fig 13 zero-copy).
    FpgaImage img2 = twoSlotImage();
    img2.id = 2;
    sim.spawn(programIt(dev, img2, ProgramMode::Cached, true));
    sim.run();
    ASSERT_TRUE(dev.bankPeek(1, "payload").has_value());
    EXPECT_EQ(*dev.bankPeek(1, "payload"), 4096u);

    // Reprogram without retention: banks are cleared.
    FpgaImage img3 = twoSlotImage();
    img3.id = 3;
    sim.spawn(programIt(dev, img3, ProgramMode::Cached, false));
    sim.run();
    EXPECT_FALSE(dev.bankPeek(1, "payload").has_value());
}

TEST(Fpga, BankClearDropsData)
{
    Simulation sim;
    FpgaDevice dev(sim, 0, 0, FpgaResources::f1Totals(), 2);
    auto w = [](FpgaDevice &d) -> Task<> {
        co_await d.bankWrite(0, "x", 100);
    };
    sim.spawn(w(dev));
    sim.run();
    dev.bankClear(0);
    EXPECT_FALSE(dev.bankPeek(0, "x").has_value());
}

TEST(Fpga, TwelveFunctionWrapperMatchesTable4Scale)
{
    // Table 4: a 12-function image uses ~10.1% LUTs and ~22.5% BRAMs.
    FpgaImage img;
    img.id = 9;
    for (int i = 0; i < 4; ++i) {
        img.slots.push_back(
            KernelSlot{"madd" + std::to_string(i), {3600, 8530, 30, 60}});
        img.slots.push_back(KernelSlot{"mmult" + std::to_string(i),
                                       {9007, 9530, 30, 64}});
        img.slots.push_back(KernelSlot{"mscale" + std::to_string(i),
                                       {2500, 7539, 30, 56}});
    }
    auto total = img.totalResources();
    auto budget = FpgaResources::f1Totals();
    EXPECT_NEAR(double(total.luts) / double(budget.luts), 0.101, 0.01);
    EXPECT_NEAR(double(total.brams) / double(budget.brams), 0.225, 0.03);
    EXPECT_TRUE(total.fitsIn(budget));
}

} // namespace
