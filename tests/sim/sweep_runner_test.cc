/** @file Unit tests for the parallel SweepRunner pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "sim/task.hh"

namespace {

using molecule::sim::Simulation;
using molecule::sim::SweepRunner;
using namespace molecule::sim::literals;

TEST(SweepRunner, RunsEveryIndexExactlyOnce)
{
    SweepRunner pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.forEach(hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, ZeroCountIsANoop)
{
    SweepRunner pool(2);
    pool.forEach(0, [](std::size_t) { FAIL(); });
}

TEST(SweepRunner, MapCollectsResultsInIndexOrder)
{
    SweepRunner pool(3);
    auto out = pool.map<std::size_t>(100,
                                     [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, SingleThreadPoolStillCompletes)
{
    SweepRunner pool(1); // caller-only, no workers
    EXPECT_EQ(pool.threadCount(), 1u);
    std::vector<int> hits(64, 0);
    pool.forEach(hits.size(), [&](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(SweepRunner, ReusableAcrossBatches)
{
    SweepRunner pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        pool.forEach(17, [&](std::size_t i) {
            sum.fetch_add(int(i) + round);
        });
        EXPECT_EQ(sum.load(), 136 + 17 * round);
    }
}

TEST(SweepRunner, ReplicaExceptionPropagatesToCaller)
{
    SweepRunner pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.forEach(1000,
                     [&](std::size_t i) {
                         if (i == 3)
                             throw std::runtime_error("replica 3");
                         ran.fetch_add(1);
                     }),
        std::runtime_error);
    // The batch short-circuits: not every replica needs to have run.
    EXPECT_LE(ran.load(), 1000);
    // The pool survives and stays usable.
    std::atomic<int> after{0};
    pool.forEach(8, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 8);
}

/** One tiny simulation replica; returns its final virtual time. */
std::int64_t
replica(std::uint64_t seed)
{
    Simulation sim(seed);
    auto body = [](Simulation *s) -> molecule::sim::Task<> {
        for (int i = 0; i < 100; ++i) {
            const auto jitter = s->rng().uniformInt(1, 50);
            co_await s->delay(molecule::sim::SimTime(jitter));
        }
    };
    sim.spawn(body(&sim));
    return sim.run().raw();
}

TEST(SweepRunner, SimulationReplicasMatchSerialBitForBit)
{
    // The whole point of the runner: a threaded sweep must produce
    // exactly what the serial loop produces, element for element.
    std::vector<std::int64_t> serial;
    for (std::uint64_t s = 0; s < 64; ++s)
        serial.push_back(replica(s));

    SweepRunner pool;
    auto threaded = pool.map<std::int64_t>(
        64, [](std::size_t i) { return replica(std::uint64_t(i)); });
    EXPECT_EQ(serial, threaded);
}

} // namespace
