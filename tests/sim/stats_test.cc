/** @file Unit tests for counters, histograms and the table renderer. */

#include <gtest/gtest.h>

#include "sim/stats.hh"
#include "sim/table.hh"
#include "sim/time.hh"

namespace {

using molecule::sim::Counter;
using molecule::sim::Histogram;
using molecule::sim::StatRegistry;
using molecule::sim::Table;
using namespace molecule::sim::literals;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Histogram, BasicMoments)
{
    Histogram h;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.add(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
    EXPECT_NEAR(h.stddev(), 1.29099, 1e-4);
}

TEST(Histogram, PercentilesNearestRank)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(double(i));
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
}

TEST(Histogram, AddTimeStoresMicroseconds)
{
    Histogram h;
    h.addTime(1500_ns);
    EXPECT_DOUBLE_EQ(h.mean(), 1.5);
}

TEST(Histogram, InterleavedAddAndQuery)
{
    Histogram h;
    h.add(5.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    h.add(1.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    h.add(9.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.add(1.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, SummaryLineContainsPercentiles)
{
    Histogram h;
    for (int i = 1; i <= 10; ++i)
        h.add(double(i));
    auto line = h.summaryLine();
    EXPECT_NE(line.find("avg 5.50"), std::string::npos);
    EXPECT_NE(line.find("p50 5.00"), std::string::npos);
    EXPECT_NE(line.find("p99 10.00"), std::string::npos);
}

TEST(StatRegistry, NamedAccessCreatesOnDemand)
{
    StatRegistry reg;
    reg.counter("invocations").inc(3);
    reg.histogram("latency").add(1.0);
    EXPECT_EQ(reg.counter("invocations").value(), 3);
    EXPECT_EQ(reg.histogram("latency").count(), 1u);
    reg.clear();
    EXPECT_TRUE(reg.counters().empty());
    EXPECT_TRUE(reg.histograms().empty());
}

TEST(Table, RendersAlignedColumns)
{
    Table t("Demo");
    t.header({"name", "value"});
    t.row({"alpha", "1.0"});
    t.row({"b", "22.5"});
    auto s = t.render();
    EXPECT_NE(s.find("== Demo =="), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha  1.0"), std::string::npos);
    // column alignment pads "b" to the width of "alpha"
    EXPECT_NE(s.find("b      22.5"), std::string::npos);
}

TEST(Table, NumFormatsDecimals)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

} // namespace
