/** @file Unit tests for the SBO InlineCallback. */

#include <gtest/gtest.h>

#include <array>
#include <coroutine>
#include <memory>
#include <utility>

#include "sim/callback.hh"

namespace {

using molecule::sim::InlineCallback;

TEST(InlineCallback, EmptyByDefault)
{
    InlineCallback cb;
    EXPECT_FALSE(bool(cb));
    EXPECT_FALSE(cb.usesHeap());
}

TEST(InlineCallback, SmallLambdaStaysInline)
{
    int hits = 0;
    InlineCallback cb([&hits] { ++hits; });
    EXPECT_TRUE(bool(cb));
    EXPECT_FALSE(cb.usesHeap());
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, CapturesUpToInlineLimitWithoutHeap)
{
    std::array<std::uint64_t, InlineCallback::kInlineBytes / 8> big{};
    big.back() = 7;
    std::uint64_t out = 0;
    InlineCallback cb([big, &out]() mutable { out = big.back(); });
    // `big` plus the reference exceeds the buffer; the pure-array
    // capture alone must not.
    InlineCallback fits([big] { (void)big; });
    EXPECT_FALSE(fits.usesHeap());
    cb();
    EXPECT_EQ(out, 7u);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap)
{
    std::array<std::uint64_t, 16> big{}; // 128 B > kInlineBytes
    big[0] = 42;
    std::uint64_t out = 0;
    InlineCallback cb([big, &out] { out = big[0]; });
    EXPECT_TRUE(cb.usesHeap());
    cb();
    EXPECT_EQ(out, 42u);
}

TEST(InlineCallback, MovePreservesCallableAndEmptiesSource)
{
    int hits = 0;
    InlineCallback a([&hits] { ++hits; });
    InlineCallback b(std::move(a));
    EXPECT_FALSE(bool(a)); // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(bool(b));
    b();
    EXPECT_EQ(hits, 1);

    InlineCallback c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MoveOnlyCaptureIsSupported)
{
    auto owned = std::make_unique<int>(9);
    int out = 0;
    InlineCallback cb(
        [p = std::move(owned), &out] { out = *p; });
    EXPECT_FALSE(cb.usesHeap());
    cb();
    EXPECT_EQ(out, 9);
}

TEST(InlineCallback, DestructorReleasesCapture)
{
    auto counted = std::make_shared<int>(1);
    {
        InlineCallback cb([counted] { (void)counted; });
        EXPECT_EQ(counted.use_count(), 2);
    }
    EXPECT_EQ(counted.use_count(), 1);

    // Heap representation too.
    std::array<char, 128> pad{};
    {
        InlineCallback cb([counted, pad] { (void)pad; });
        EXPECT_TRUE(cb.usesHeap());
        EXPECT_EQ(counted.use_count(), 2);
    }
    EXPECT_EQ(counted.use_count(), 1);
}

TEST(InlineCallback, MoveAssignDestroysPreviousCallable)
{
    auto counted = std::make_shared<int>(1);
    InlineCallback cb([counted] { (void)counted; });
    EXPECT_EQ(counted.use_count(), 2);
    cb = InlineCallback([] {});
    EXPECT_EQ(counted.use_count(), 1);
}

struct Resumed
{
    struct promise_type
    {
        bool *flag = nullptr;

        Resumed
        get_return_object()
        {
            return Resumed{
                std::coroutine_handle<promise_type>::from_promise(
                    *this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    std::coroutine_handle<promise_type> handle;

    ~Resumed()
    {
        if (handle)
            handle.destroy();
    }
};

Resumed
setOnResume(bool *flag)
{
    *flag = true;
    co_return;
}

TEST(InlineCallback, CoroutineFastPathResumesHandle)
{
    bool resumed = false;
    Resumed coro = setOnResume(&resumed);
    InlineCallback cb{std::coroutine_handle<>(coro.handle)};
    EXPECT_FALSE(cb.usesHeap());
    EXPECT_FALSE(resumed); // still suspended at initial_suspend
    cb();
    EXPECT_TRUE(resumed);
}

TEST(InlineCallback, AssignCoroutineReplacesCallable)
{
    auto counted = std::make_shared<int>(1);
    InlineCallback cb([counted] { (void)counted; });
    bool resumed = false;
    Resumed coro = setOnResume(&resumed);
    cb.assignCoroutine(std::coroutine_handle<>(coro.handle));
    EXPECT_EQ(counted.use_count(), 1); // old capture released
    cb();
    EXPECT_TRUE(resumed);
}

} // namespace
