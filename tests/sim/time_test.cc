/** @file Unit tests for SimTime arithmetic and formatting. */

#include <gtest/gtest.h>

#include "sim/time.hh"

namespace {

using molecule::sim::SimTime;
using namespace molecule::sim::literals;

TEST(SimTime, LiteralsProduceNanoseconds)
{
    EXPECT_EQ((5_ns).raw(), 5);
    EXPECT_EQ((5_us).raw(), 5000);
    EXPECT_EQ((5_ms).raw(), 5000000);
    EXPECT_EQ((5_s).raw(), 5000000000LL);
}

TEST(SimTime, FractionalFactories)
{
    EXPECT_EQ(SimTime::fromMicroseconds(2.5).raw(), 2500);
    EXPECT_EQ(SimTime::fromMilliseconds(0.001).raw(), 1000);
    EXPECT_EQ(SimTime::fromSeconds(1e-9).raw(), 1);
}

TEST(SimTime, Arithmetic)
{
    EXPECT_EQ(1_ms + 500_us, SimTime::fromMilliseconds(1.5));
    EXPECT_EQ(1_ms - 1_ms, 0_ns);
    EXPECT_EQ((2_us) * 3.0, 6_us);
    EXPECT_EQ((6_us) / 3.0, 2_us);

    SimTime t = 1_us;
    t += 1_us;
    t -= 500_ns;
    EXPECT_EQ(t.raw(), 1500);
}

TEST(SimTime, Comparisons)
{
    EXPECT_LT(1_us, 2_us);
    EXPECT_LE(1_us, 1_us);
    EXPECT_GT(1_ms, 999_us);
    EXPECT_EQ(1000_ns, 1_us);
}

TEST(SimTime, Conversions)
{
    EXPECT_DOUBLE_EQ((1500_ns).toMicroseconds(), 1.5);
    EXPECT_DOUBLE_EQ((2500_us).toMilliseconds(), 2.5);
    EXPECT_DOUBLE_EQ((1500_ms).toSeconds(), 1.5);
}

TEST(SimTime, ToStringSelectsUnit)
{
    EXPECT_EQ((500_ns).toString(), "500.00ns");
    EXPECT_EQ((25_us).toString(), "25.00us");
    EXPECT_EQ((53_ms).toString(), "53.00ms");
    EXPECT_EQ((20_s).toString(), "20.00s");
}

TEST(SimTime, MaxActsAsInfiniteDeadline)
{
    EXPECT_GT(SimTime::max(), 1000000_s);
}

} // namespace
