/** @file Unit tests for coroutine tasks over the simulation driver. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.hh"
#include "sim/task.hh"

namespace {

using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

Task<>
sleeper(Simulation &sim, SimTime t, std::vector<SimTime> *log)
{
    co_await sim.delay(t);
    log->push_back(sim.now());
}

TEST(Task, DelayAdvancesClock)
{
    Simulation sim;
    std::vector<SimTime> log;
    sim.spawn(sleeper(sim, 10_us, &log));
    sim.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], 10_us);
    EXPECT_EQ(sim.now(), 10_us);
}

TEST(Task, ParallelTasksInterleaveByTime)
{
    Simulation sim;
    std::vector<SimTime> log;
    sim.spawn(sleeper(sim, 30_us, &log));
    sim.spawn(sleeper(sim, 10_us, &log));
    sim.spawn(sleeper(sim, 20_us, &log));
    sim.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0], 10_us);
    EXPECT_EQ(log[1], 20_us);
    EXPECT_EQ(log[2], 30_us);
}

Task<int>
answer(Simulation &sim)
{
    co_await sim.delay(1_us);
    co_return 42;
}

Task<>
asker(Simulation &sim, int *out)
{
    *out = co_await answer(sim);
}

TEST(Task, ChildTaskReturnsValue)
{
    Simulation sim;
    int out = 0;
    sim.spawn(asker(sim, &out));
    sim.run();
    EXPECT_EQ(out, 42);
    EXPECT_EQ(sim.now(), 1_us);
}

Task<int>
twoStage(Simulation &sim)
{
    int a = co_await answer(sim);
    int b = co_await answer(sim);
    co_return a + b;
}

Task<>
nestedAsker(Simulation &sim, int *out)
{
    *out = co_await twoStage(sim);
}

TEST(Task, NestedChildrenAccumulateTime)
{
    Simulation sim;
    int out = 0;
    sim.spawn(nestedAsker(sim, &out));
    sim.run();
    EXPECT_EQ(out, 84);
    EXPECT_EQ(sim.now(), 2_us);
}

Task<int>
thrower(Simulation &sim)
{
    co_await sim.delay(1_us);
    throw std::runtime_error("boom");
}

Task<>
catcher(Simulation &sim, bool *caught)
{
    try {
        (void)co_await thrower(sim);
    } catch (const std::runtime_error &e) {
        *caught = std::string(e.what()) == "boom";
    }
}

TEST(Task, ExceptionsPropagateThroughAwait)
{
    Simulation sim;
    bool caught = false;
    sim.spawn(catcher(sim, &caught));
    sim.run();
    EXPECT_TRUE(caught);
}

Task<>
synchronous(int *out)
{
    *out = 7;
    co_return;
}

TEST(Task, SpawnRunsEagerlyUntilFirstSuspend)
{
    Simulation sim;
    int out = 0;
    sim.spawn(synchronous(&out));
    // No sim.run() needed: the task never suspended.
    EXPECT_EQ(out, 7);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Task, UnstartedTaskIsDestroyedCleanly)
{
    Simulation sim;
    int out = 0;
    {
        Task<> t = synchronous(&out);
        EXPECT_TRUE(t.valid());
        // dropped without starting
    }
    EXPECT_EQ(out, 0);
}

Task<>
spawnerChain(Simulation &sim, int depth, int *count)
{
    ++*count;
    if (depth > 0) {
        co_await sim.delay(1_us);
        sim.spawn(spawnerChain(sim, depth - 1, count));
    }
}

TEST(Task, TasksCanSpawnTasks)
{
    Simulation sim;
    int count = 0;
    sim.spawn(spawnerChain(sim, 10, &count));
    sim.run();
    EXPECT_EQ(count, 11);
    EXPECT_EQ(sim.now(), 10_us);
}

TEST(Simulation, RunUntilStopsAtDeadline)
{
    Simulation sim;
    std::vector<SimTime> log;
    sim.spawn(sleeper(sim, 10_us, &log));
    sim.spawn(sleeper(sim, 100_us, &log));
    sim.runUntil(50_us);
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(sim.now(), 50_us);
    sim.run();
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(sim.now(), 100_us);
}

TEST(Simulation, ScheduleAndCancel)
{
    Simulation sim;
    int fired = 0;
    auto id = sim.schedule(5_us, [&] { ++fired; });
    sim.schedule(6_us, [&] { ++fired; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_EQ(fired, 1);
}

} // namespace
