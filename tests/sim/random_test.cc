/** @file Unit tests for the deterministic RNG and its distributions. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"

namespace {

using molecule::sim::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentStreams)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += (a.next() == b.next());
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng r(7);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        sawLo |= (v == 3);
        sawHi |= (v == 7);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformIntSingleton)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.uniformInt(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(11);
    double sum = 0, sumSq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal(10.0, 2.0);
        sum += v;
        sumSq += v * v;
    }
    const double mean = sum / n;
    const double var = sumSq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(13);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, JitterIsCenteredAndClamped)
{
    Rng r(17);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double j = r.jitter(0.05);
        EXPECT_GT(j, 0.0);
        EXPECT_GE(j, 1.0 - 3 * 0.05 - 1e-12);
        EXPECT_LE(j, 1.0 + 3 * 0.05 + 1e-12);
        sum += j;
    }
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, ZeroJitterIsIdentity)
{
    Rng r(19);
    EXPECT_EQ(r.jitter(0.0), 1.0);
    EXPECT_EQ(r.jitter(-1.0), 1.0);
}

} // namespace
