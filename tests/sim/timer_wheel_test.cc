/**
 * @file
 * Calendar-wheel tests (sim/timer_wheel.hh + EventQueue integration).
 *
 * The wheel itself never decides firing order — EventQueue does — so
 * these tests pin two layers: the raw TimerWheel contract (insert
 * refusal rules, earliest-window location, drain order, sweeping) and
 * the queue-level determinism invariants the wheel must not disturb:
 * same-tick FIFO across heap/wheel/run, cancellation after a cascade,
 * EventId generation safety when wheel slots are recycled, and the
 * empty()/drain() interplay. A randomized model check compares the
 * full pop sequence against a sorted reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"
#include "sim/timer_wheel.hh"

namespace {

using namespace molecule;
using sim::EventNode;
using sim::EventQueue;
using sim::SimTime;
using sim::TimerWheel;

TEST(TimerWheel, InsertRefusalRules)
{
    sim::Arena arena;
    TimerWheel wheel(arena);

    // In range: level 0 (short), level 1 (ms), level 2 (hundreds ms).
    EXPECT_TRUE(wheel.insert(EventNode{1000, 1, 0}));
    EXPECT_TRUE(wheel.insert(EventNode{10'000'000, 2, 1}));
    EXPECT_TRUE(wheel.insert(EventNode{1'000'000'000, 3, 2}));
    EXPECT_EQ(wheel.entries(), 3u);

    // Past the ~17.2 s horizon: refused, caller keeps it.
    EXPECT_FALSE(
        wheel.insert(EventNode{20'000'000'000, 4, 3}));

    // Behind the drained frontier: refused.
    wheel.advanceBase(std::int64_t(1) << 16);
    EXPECT_FALSE(wheel.insert(EventNode{100, 5, 4}));
    EXPECT_EQ(wheel.entries(), 3u);
}

TEST(TimerWheel, LocateAndDrainPreserveInsertionOrder)
{
    sim::Arena arena;
    TimerWheel wheel(arena);

    // Three nodes in one level-0 window, inserted out of time order:
    // drain must hand them back in INSERTION order (the queue sorts).
    ASSERT_TRUE(wheel.insert(EventNode{500, 7, 0}));
    ASSERT_TRUE(wheel.insert(EventNode{100, 8, 1}));
    ASSERT_TRUE(wheel.insert(EventNode{300, 9, 2}));

    const TimerWheel::Earliest at = wheel.locate();
    EXPECT_EQ(at.level, 0);
    EXPECT_EQ(at.ws, 0);

    std::vector<EventNode> out;
    EXPECT_EQ(wheel.drainBucket(at, out), 3u);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].seq, 7u);
    EXPECT_EQ(out[1].seq, 8u);
    EXPECT_EQ(out[2].seq, 9u);
    EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, SweepDropsDeadNodesAndCompactsChains)
{
    sim::Arena arena;
    TimerWheel wheel(arena);

    // Enough nodes in one bucket to span several 9-node blocks.
    for (std::uint64_t i = 0; i < 40; ++i)
        ASSERT_TRUE(wheel.insert(EventNode{100, i, std::uint32_t(i)}));
    ASSERT_EQ(wheel.entries(), 40u);

    const std::size_t dropped =
        wheel.sweep([](const EventNode &n) { return n.seq % 3 == 0; });
    EXPECT_EQ(dropped, 26u);
    EXPECT_EQ(wheel.entries(), 14u);

    std::vector<EventNode> out;
    wheel.drainBucket(wheel.locate(), out);
    ASSERT_EQ(out.size(), 14u);
    // Survivors keep their relative insertion order.
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_LT(out[i - 1].seq, out[i].seq);
}

// Cancel an event whose node has already cascaded from a coarse
// level into a finer one: the cancel must take effect (O(1), lazy)
// and the event must not fire.
TEST(EventQueueWheel, CancelAfterCascade)
{
    EventQueue q;
    std::vector<int> fired;

    // 32 live events engage the wheel (> kDirectHeapThreshold); the
    // spread over ~9.3 ms puts the later ones in level-1 buckets.
    sim::EventId target = 0;
    for (int i = 0; i < 32; ++i) {
        const auto id = q.schedule(SimTime::microseconds(i * 300),
                                   [&fired, i] { fired.push_back(i); });
        if (i == 20) // 6 ms: lives in a level-1 bucket initially
            target = id;
    }

    // Fire the first 15 events; by 4.2 ms the level-1 bucket holding
    // the 6 ms event has cascaded to level 0.
    for (int i = 0; i < 15; ++i)
        q.fireNext();
    EXPECT_TRUE(q.cancel(target));
    EXPECT_FALSE(q.cancel(target)); // already cancelled

    while (!q.empty())
        q.fireNext();

    ASSERT_EQ(fired.size(), 31u);
    EXPECT_EQ(std::find(fired.begin(), fired.end(), 20), fired.end());
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LT(fired[i - 1], fired[i]);
}

// Same-instant events must fire in scheduling order no matter which
// structure holds them: the first few go straight to the heap (tiny
// queue), the rest to the wheel, and far-future ones overflow the
// wheel horizon back into the heap.
TEST(EventQueueWheel, SameTickFifoAcrossHeapWheelAndOverflow)
{
    EventQueue q;
    std::vector<int> order;

    // 40 events at the same instant: ~16 via the direct-heap path,
    // the rest via a wheel bucket.
    for (int i = 0; i < 40; ++i)
        q.schedule(SimTime::milliseconds(1),
                   [&order, i] { order.push_back(i); });
    // Two same-instant events past the wheel horizon (heap overflow).
    for (int i = 40; i < 42; ++i)
        q.schedule(SimTime::seconds(100),
                   [&order, i] { order.push_back(i); });

    while (!q.empty())
        q.fireNext();

    ASSERT_EQ(order.size(), 42u);
    for (int i = 0; i < 42; ++i)
        EXPECT_EQ(order[std::size_t(i)], i) << "position " << i;
}

// A cancelled wheel event frees its slab slot; the next schedule may
// reuse the slot while the stale node still sits in a bucket. The
// generation tag must reject the old id and honor the new one.
TEST(EventQueueWheel, EventIdAbaOnRecycledWheelSlot)
{
    EventQueue q;
    int fired = 0;

    // Engage the wheel, then park a cancellable event in a bucket.
    for (int i = 0; i < 24; ++i)
        q.schedule(SimTime::microseconds(100 + i), [&] { ++fired; });
    const auto oldId =
        q.schedule(SimTime::milliseconds(2), [&] { ++fired; });
    ASSERT_TRUE(q.cancel(oldId));

    // Reuses the freed slot (LIFO free list) while the stale node is
    // still parked in the wheel bucket.
    const auto newId =
        q.schedule(SimTime::milliseconds(3), [&] { ++fired; });
    EXPECT_EQ(std::uint32_t(oldId), std::uint32_t(newId))
        << "test premise: slot is recycled";
    EXPECT_NE(oldId, newId) << "generation must differ";

    EXPECT_FALSE(q.cancel(oldId)) << "stale id must be rejected";
    EXPECT_EQ(q.seqOfEvent(oldId), 0u);
    EXPECT_NE(q.seqOfEvent(newId), 0u);

    EXPECT_TRUE(q.cancel(newId));
    while (!q.empty())
        q.fireNext();
    EXPECT_EQ(fired, 24);
}

TEST(EventQueueWheel, EmptyAndDrainInteraction)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());

    SimTime clock;
    EXPECT_EQ(q.drain(clock, SimTime::seconds(1), 100), 0u);

    int fired = 0;
    for (int i = 0; i < 50; ++i)
        q.schedule(SimTime::microseconds(i * 200), [&] { ++fired; });
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.size(), 50u);

    // Partial drain by count: exactly K events, clock follows.
    EXPECT_EQ(q.drain(clock, SimTime::seconds(1), 20), 20u);
    EXPECT_EQ(fired, 20);
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(clock, SimTime::microseconds(19 * 200));
    EXPECT_EQ(q.nextTime(), SimTime::microseconds(20 * 200));

    // Partial drain by deadline: events past it stay queued.
    EXPECT_EQ(q.drain(clock, SimTime::microseconds(30 * 200), 100),
              11u);
    EXPECT_EQ(fired, 31);

    // Drain the rest; empty() flips and further drains are no-ops.
    EXPECT_EQ(q.drain(clock, SimTime::seconds(1), 100), 19u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.drain(clock, SimTime::seconds(1), 100), 0u);
    EXPECT_EQ(fired, 50);
}

// Deterministic pseudo-random schedule/cancel/pop mix, checked
// against a sorted reference model: the pop sequence (time, seq)
// must match a plain stable-sorted list exactly, whatever mix of
// heap, wheel levels and ready-run served each event.
TEST(EventQueueWheel, RandomizedModelCheck)
{
    EventQueue q;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    const auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    struct Ref
    {
        std::int64_t when;
        std::uint64_t seq;
        bool cancelled = false;
    };
    std::vector<Ref> model;
    std::vector<std::pair<sim::EventId, std::size_t>> cancellable;
    std::vector<std::uint64_t> popped;

    std::int64_t now = 0;
    for (int op = 0; op < 4000; ++op) {
        const std::uint64_t r = next();
        if (r % 100 < 70 || q.empty()) {
            // Delays spanning direct-heap, all wheel levels and the
            // past-horizon overflow path.
            static constexpr std::int64_t kSpans[] = {
                5'000,          // level 0
                3'000'000,      // level 1
                900'000'000,    // level 2
                30'000'000'000, // past horizon -> heap
            };
            const std::int64_t span = kSpans[next() % 4];
            const std::int64_t when =
                now + std::int64_t(next() % std::uint64_t(span));
            const auto id = q.schedule(sim::SimTime(when), [] {});
            model.push_back(Ref{when, q.lastScheduledSeq()});
            cancellable.push_back({id, model.size() - 1});
        } else if (r % 100 < 85 && !cancellable.empty()) {
            const std::size_t pick =
                std::size_t(next() % cancellable.size());
            const auto [id, refIdx] = cancellable[pick];
            if (q.cancel(id))
                model[refIdx].cancelled = true;
            cancellable.erase(cancellable.begin() +
                              std::ptrdiff_t(pick));
        } else {
            const sim::SimTime t = q.nextTime();
            const std::uint64_t seq = q.nextEventSeq();
            EXPECT_GE(t.raw(), now);
            now = t.raw();
            popped.push_back(seq);
            auto [when, fn] = q.popNext();
            EXPECT_EQ(when, t);
        }
    }
    while (!q.empty()) {
        popped.push_back(q.nextEventSeq());
        q.popNext();
    }

    std::vector<Ref> live;
    for (const Ref &ref : model)
        if (!ref.cancelled)
            live.push_back(ref);
    std::sort(live.begin(), live.end(),
              [](const Ref &a, const Ref &b) {
                  return a.when != b.when ? a.when < b.when
                                          : a.seq < b.seq;
              });
    ASSERT_EQ(popped.size(), live.size());
    for (std::size_t i = 0; i < live.size(); ++i)
        ASSERT_EQ(popped[i], live[i].seq) << "pop " << i;
}

// Cancel churn against parked wheel nodes must stay memory-bounded:
// the stale-node sweep keeps wheelEntries() proportional to the live
// count, and the slab never grows past the live high-water mark.
TEST(EventQueueWheel, MemoryBoundedUnderWheelCancelChurn)
{
    EventQueue q;
    for (int i = 0; i < 24; ++i)
        q.schedule(SimTime::seconds(1), [] {});

    sim::EventId pending[16] = {};
    for (int round = 0; round < 20000; ++round) {
        const int k = round % 16;
        if (pending[k] != 0)
            q.cancel(pending[k]);
        pending[k] = q.schedule(
            SimTime::milliseconds(1 + round % 50), [] {});
    }
    EXPECT_LE(q.wheelEntries(),
              4 * q.size() + 256 + 16)
        << "stale wheel nodes must be swept";
    EXPECT_LE(q.slabCapacity(), 256u);
    while (!q.empty())
        q.popNext();
}

} // namespace
