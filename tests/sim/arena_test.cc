/**
 * @file
 * Arena and ArenaAllocator tests (sim/arena.hh).
 *
 * Pins the lifetime contract the obs/fault layers build on: bump
 * allocation with alignment, reset() retaining chunks (zero-alloc
 * steady state), ArenaAllocator driving node containers, and the
 * copy-out rule — snapshots taken before a reset stay valid after it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "sim/arena.hh"

namespace {

using namespace molecule;
using sim::Arena;
using sim::ArenaAllocator;

TEST(Arena, BumpAllocationAndAlignment)
{
    Arena arena(1024);
    EXPECT_EQ(arena.chunkCount(), 0u) << "first chunk is lazy";

    char *a = static_cast<char *>(arena.allocate(3, 1));
    char *b = static_cast<char *>(arena.allocate(3, 1));
    EXPECT_NE(a, b);
    EXPECT_EQ(arena.chunkCount(), 1u);

    void *p = arena.allocate(8, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);

    // Oversized request: served from a dedicated bigger chunk.
    void *big = arena.allocate(64 * 1024);
    EXPECT_NE(big, nullptr);
    EXPECT_GE(arena.capacityBytes(), 64u * 1024);
}

TEST(Arena, CreateConstructsInPlace)
{
    struct Pod
    {
        int x;
        double y;
    };
    Arena arena;
    Pod *p = arena.create<Pod>(7, 2.5);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->x, 7);
    EXPECT_EQ(p->y, 2.5);

    int *arr = arena.allocateArray<int>(100);
    for (int i = 0; i < 100; ++i)
        arr[i] = i;
    EXPECT_EQ(arr[99], 99);
}

TEST(Arena, ResetRetainsChunksForReuse)
{
    Arena arena(512);
    for (int i = 0; i < 64; ++i)
        arena.allocate(64);
    const std::size_t chunksBefore = arena.chunkCount();
    const std::size_t capBefore = arena.capacityBytes();
    ASSERT_GT(chunksBefore, 1u);

    // Same workload after reset: no new chunks, same capacity.
    arena.reset();
    for (int i = 0; i < 64; ++i)
        arena.allocate(64);
    EXPECT_EQ(arena.chunkCount(), chunksBefore);
    EXPECT_EQ(arena.capacityBytes(), capBefore);
}

TEST(Arena, AllocatorBackedMapInsertEraseLookup)
{
    using Alloc = ArenaAllocator<std::pair<const int, std::uint64_t>>;
    Arena arena(4096);
    std::map<int, std::uint64_t, std::less<int>, Alloc> m{
        Alloc(arena)};

    for (int i = 0; i < 200; ++i)
        m[i * 7 % 101] = std::uint64_t(i);
    EXPECT_EQ(m.size(), 101u);
    for (int i = 0; i < 50; ++i)
        m.erase(i);
    EXPECT_EQ(m.size(), 51u);
    // Iteration stays ordered (determinism contract).
    int prev = -1;
    for (const auto &[k, v] : m) {
        EXPECT_GT(k, prev);
        prev = k;
    }
    EXPECT_GT(arena.chunkCount(), 0u) << "nodes came from the arena";
}

// The copy-out rule in practice: data snapshotted out of the arena
// must survive a reset (and further reuse) of that arena untouched.
TEST(Arena, SnapshotSurvivesResetAndReuse)
{
    Arena arena(1024);
    char *s = static_cast<char *>(arena.allocate(32));
    std::memcpy(s, "in-flight export payload", 25);

    std::vector<char> snapshot(s, s + 25);

    arena.reset();
    // Reuse clobbers the old bytes...
    char *t = static_cast<char *>(arena.allocate(32));
    std::memset(t, 'X', 32);

    // ...but the snapshot is untouched.
    EXPECT_EQ(std::memcmp(snapshot.data(),
                          "in-flight export payload", 25),
              0);
}

} // namespace
