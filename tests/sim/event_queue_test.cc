/** @file Unit tests for the deterministic event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace {

using molecule::sim::EventQueue;
using molecule::sim::SimTime;
using namespace molecule::sim::literals;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3_us, [&] { order.push_back(3); });
    q.schedule(1_us, [&] { order.push_back(1); });
    q.schedule(2_us, [&] { order.push_back(2); });
    while (!q.empty())
        q.popNext().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5_us, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.popNext().second();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, PopNextReturnsTimestampAndCallback)
{
    EventQueue q;
    int fired = 0;
    q.schedule(7_us, [&] { ++fired; });
    EXPECT_EQ(q.nextTime(), 7_us);
    auto [when, fn] = q.popNext();
    EXPECT_EQ(when, 7_us);
    fn();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    auto id = q.schedule(1_us, [&] { ++fired; });
    q.schedule(2_us, [&] { ++fired; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
    while (!q.empty())
        q.popNext().second();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsRejected)
{
    EventQueue q;
    auto id = q.schedule(1_us, [] {});
    q.popNext().second();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, DoubleCancelIsRejected)
{
    EventQueue q;
    auto id = q.schedule(1_us, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdIsRejected)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(0));
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CallbackMayScheduleMoreEvents)
{
    EventQueue q;
    std::vector<SimTime> fire;
    q.schedule(1_us, [&] {
        q.schedule(5_us, [&] { fire.push_back(5_us); });
        fire.push_back(1_us);
    });
    while (!q.empty()) {
        auto [when, fn] = q.popNext();
        fn();
        fire.push_back(when);
    }
    // Each firing logs twice: once from the callback, once from the
    // popped timestamp.
    ASSERT_EQ(fire.size(), 4u);
    EXPECT_EQ(fire[0], 1_us);
    EXPECT_EQ(fire[1], 1_us);
    EXPECT_EQ(fire[2], 5_us);
    EXPECT_EQ(fire[3], 5_us);
}

// Regression for the old const_cast pop + tombstone-set design: pops
// interleaved with cancels must keep firing the live events in (time,
// schedule-order) sequence, reject every stale id, and keep size()
// exact throughout.
TEST(EventQueue, PopsInterleavedWithCancels)
{
    EventQueue q;
    std::vector<int> fired;
    std::vector<molecule::sim::EventId> ids;
    for (int i = 0; i < 32; ++i) {
        ids.push_back(
            q.schedule(SimTime::microseconds(i), [&fired, i] {
                fired.push_back(i);
            }));
    }
    // Reference model: an event is pending iff neither fired nor
    // cancelled; the queue must fire pending events in index order
    // (times are ascending). After every pop both sides attempt to
    // cancel the same pseudo-random id, so head, mid-heap and stale
    // cancels all interleave with pops.
    std::vector<bool> cancelled(32, false), done(32, false);
    std::vector<int> expect;
    int pops = 0;
    while (!q.empty()) {
        q.popNext().second();
        ++pops;
        const std::size_t k = std::size_t(pops * 5) % 32;
        // Mirror in the model: account for the fired event first.
        for (int i = 0; i < 32; ++i) {
            if (!cancelled[std::size_t(i)] && !done[std::size_t(i)]) {
                done[std::size_t(i)] = true;
                expect.push_back(i);
                break;
            }
        }
        const bool modelCancel = !cancelled[k] && !done[k];
        EXPECT_EQ(q.cancel(ids[k]), modelCancel);
        if (modelCancel)
            cancelled[k] = true;
    }
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(q.size(), 0u);
    // Every id is now dead: fired or cancelled, all must reject.
    for (auto id : ids)
        EXPECT_FALSE(q.cancel(id));
}

// The old design kept cancelled-but-never-popped entries in a
// tombstone set until they surfaced at the heap head — unbounded
// growth under timer-reset churn. The slab must recycle slots and the
// heap must compact, keeping memory proportional to the *live* count.
TEST(EventQueue, MemoryStableUnderCancelChurn)
{
    EventQueue q;
    // A handful of long-lived events pin the heap head far in the
    // future so churned timers behind them are never popped.
    for (int i = 0; i < 4; ++i)
        q.schedule(SimTime::seconds(100 + i), [] {});
    for (int round = 0; round < 100000; ++round) {
        auto id = q.schedule(SimTime::seconds(1 + round % 7), [] {});
        ASSERT_TRUE(q.cancel(id));
    }
    EXPECT_EQ(q.size(), 4u);
    // Slots recycle through the free list; the slab never grows past
    // the live high-water mark.
    EXPECT_LE(q.slabCapacity(), 8u);
    // Stale heap nodes are bounded by the compaction threshold, not
    // by the 100k cancels.
    EXPECT_LE(q.heapSize(), 4u + 65u);
    while (!q.empty())
        q.popNext().second();
}

// A cancel id must stay dead after its slab slot is recycled by a new
// event (generation tag protects against slot-reuse ABA).
TEST(EventQueue, StaleIdAfterSlotReuseIsRejected)
{
    EventQueue q;
    auto a = q.schedule(1_us, [] {});
    EXPECT_TRUE(q.cancel(a));
    int fired = 0;
    // Reuses the slot a occupied.
    auto b = q.schedule(2_us, [&] { ++fired; });
    EXPECT_FALSE(q.cancel(a));
    EXPECT_EQ(q.size(), 1u);
    q.popNext().second();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.cancel(b));
}

// A callback cancelling the very event that is firing must get false
// (the event already left the queue) without corrupting the counts.
TEST(EventQueue, SelfCancelFromCallbackIsRejected)
{
    molecule::sim::Simulation sim;
    molecule::sim::EventId self = 0;
    bool selfCancel = true;
    self = sim.schedule(1_us, [&] { selfCancel = sim.cancel(self); });
    sim.run();
    EXPECT_FALSE(selfCancel);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    auto a = q.schedule(1_us, [] {});
    q.schedule(2_us, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.popNext().second();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(q.empty());
}

} // namespace
