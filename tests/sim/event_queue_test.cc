/** @file Unit tests for the deterministic event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using molecule::sim::EventQueue;
using molecule::sim::SimTime;
using namespace molecule::sim::literals;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3_us, [&] { order.push_back(3); });
    q.schedule(1_us, [&] { order.push_back(1); });
    q.schedule(2_us, [&] { order.push_back(2); });
    while (!q.empty())
        q.popNext().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5_us, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.popNext().second();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, PopNextReturnsTimestampAndCallback)
{
    EventQueue q;
    int fired = 0;
    q.schedule(7_us, [&] { ++fired; });
    EXPECT_EQ(q.nextTime(), 7_us);
    auto [when, fn] = q.popNext();
    EXPECT_EQ(when, 7_us);
    fn();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    auto id = q.schedule(1_us, [&] { ++fired; });
    q.schedule(2_us, [&] { ++fired; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
    while (!q.empty())
        q.popNext().second();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsRejected)
{
    EventQueue q;
    auto id = q.schedule(1_us, [] {});
    q.popNext().second();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, DoubleCancelIsRejected)
{
    EventQueue q;
    auto id = q.schedule(1_us, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdIsRejected)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(0));
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CallbackMayScheduleMoreEvents)
{
    EventQueue q;
    std::vector<SimTime> fire;
    q.schedule(1_us, [&] {
        q.schedule(5_us, [&] { fire.push_back(5_us); });
        fire.push_back(1_us);
    });
    while (!q.empty()) {
        auto [when, fn] = q.popNext();
        fn();
        fire.push_back(when);
    }
    // Each firing logs twice: once from the callback, once from the
    // popped timestamp.
    ASSERT_EQ(fire.size(), 4u);
    EXPECT_EQ(fire[0], 1_us);
    EXPECT_EQ(fire[1], 1_us);
    EXPECT_EQ(fire[2], 5_us);
    EXPECT_EQ(fire[3], 5_us);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    auto a = q.schedule(1_us, [] {});
    q.schedule(2_us, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.popNext().second();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(q.empty());
}

} // namespace
