/**
 * @file
 * Sim-time conflict detector tests (sim/analysis.hh).
 *
 * The seeded true-positive fixture and the suppression cases pin the
 * detector's contract: a pair of same-instant accesses to one tracked
 * cell from two *pre-scheduled* events (at least one write) is
 * reported with both source sites; causal same-instant chains, pure
 * reads, and distinct instants are not.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/analysis.hh"
#include "sim/simulation.hh"

namespace {

using namespace molecule::sim;
using analysis::Tracked;
#if MOLECULE_DETERMINISM_ANALYSIS
using analysis::AccessKind;
using analysis::AccessLog;
using analysis::Conflict;
#endif

TEST(Tracked, PassthroughSemantics)
{
    Tracked<int> cell{7, "test.cell"};
    EXPECT_EQ(cell.peek(), 7);
    EXPECT_EQ(cell.read(), 7);
    cell.write(9);
    EXPECT_EQ(cell.peek(), 9);
    EXPECT_EQ(cell.fetchAdd(3), 9);
    EXPECT_EQ(cell.peek(), 12);
    cell.writeRef() += 1;
    EXPECT_EQ(cell.peek(), 13);
#if MOLECULE_DETERMINISM_ANALYSIS
    EXPECT_STREQ(cell.name(), "test.cell");
#endif
}

TEST(Tracked, AccessOutsideTrackingIsIgnored)
{
    // No simulation, no log installed: accessors must be plain
    // passthrough (this is also the runtime-off configuration).
#if MOLECULE_DETERMINISM_ANALYSIS
    EXPECT_EQ(analysis::AccessLog::current(), nullptr);
#endif
    Tracked<int> cell{1, "test.cell"};
    cell.write(2);
    EXPECT_EQ(cell.read(), 2);
}

#if MOLECULE_DETERMINISM_ANALYSIS

TEST(ConflictDetector, TrackingOffByDefault)
{
    Simulation sim;
    EXPECT_EQ(sim.accessLog(), nullptr);
}

/** The seeded true-positive fixture: two same-tick writes, one cell. */
TEST(ConflictDetector, ReportsSameTickWriteWrite)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{0, "fixture.cell"};

    // Two independent events, both scheduled at t=0, both firing at
    // t=10us: their order is pure schedule-sequence tie-break.
    sim.schedule(SimTime::microseconds(10), [&] { cell.write(1); });
    sim.schedule(SimTime::microseconds(10), [&] { cell.write(2); });
    sim.run();

    ASSERT_NE(sim.accessLog(), nullptr);
    EXPECT_EQ(sim.accessLog()->recordCount(), 2u);
    const auto conflicts = sim.accessLog()->findConflicts();
    ASSERT_EQ(conflicts.size(), 1u);

    const Conflict &c = conflicts[0];
    EXPECT_STREQ(c.cellName, "fixture.cell");
    EXPECT_EQ(c.when, SimTime::microseconds(10).raw());
    EXPECT_EQ(c.a.kind, AccessKind::Write);
    EXPECT_EQ(c.b.kind, AccessKind::Write);
    // Both scheduling call sites are named: this file, two distinct
    // lines, the earlier-scheduled event first.
    EXPECT_NE(std::strstr(c.a.file, "analysis_test.cc"), nullptr);
    EXPECT_NE(std::strstr(c.b.file, "analysis_test.cc"), nullptr);
    EXPECT_NE(c.a.line, c.b.line);
    EXPECT_LT(c.a.eventSeq, c.b.eventSeq);
    // Both events were pre-scheduled (at t=0, firing at t=10us).
    EXPECT_EQ(c.a.schedAt, 0);
    EXPECT_EQ(c.b.schedAt, 0);
    // The rendering names the cell and both sites.
    const std::string text = analysis::describe(c);
    EXPECT_NE(text.find("fixture.cell"), std::string::npos);
    EXPECT_NE(text.find("analysis_test.cc"), std::string::npos);
}

TEST(ConflictDetector, ReportsSameTickWriteRead)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{0, "fixture.cell"};
    int seen = -1;

    sim.schedule(SimTime::microseconds(5), [&] { cell.write(1); });
    sim.schedule(SimTime::microseconds(5), [&] { seen = cell.read(); });
    sim.run();

    const auto conflicts = sim.accessLog()->findConflicts();
    ASSERT_EQ(conflicts.size(), 1u);
    EXPECT_EQ(conflicts[0].a.kind, AccessKind::Write);
    EXPECT_EQ(conflicts[0].b.kind, AccessKind::Read);
    EXPECT_EQ(seen, 1); // FIFO tie-break: the write fired first
}

TEST(ConflictDetector, ReadReadIsNotAConflict)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{3, "fixture.cell"};

    sim.schedule(SimTime::microseconds(5), [&] { (void)cell.read(); });
    sim.schedule(SimTime::microseconds(5), [&] { (void)cell.read(); });
    sim.run();

    EXPECT_EQ(sim.accessLog()->recordCount(), 2u);
    EXPECT_TRUE(sim.accessLog()->findConflicts().empty());
}

TEST(ConflictDetector, DistinctTicksAreNotAConflict)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{0, "fixture.cell"};

    sim.schedule(SimTime::microseconds(5), [&] { cell.write(1); });
    sim.schedule(SimTime::microseconds(6), [&] { cell.write(2); });
    sim.run();

    EXPECT_TRUE(sim.accessLog()->findConflicts().empty());
}

TEST(ConflictDetector, CausalSameTickChainIsSuppressed)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{0, "fixture.cell"};

    // The second write happens at the same instant, but its event is
    // scheduled *at* that instant by the first one — causally ordered,
    // not tie-break dependent.
    sim.schedule(SimTime::microseconds(5), [&sim, &cell] {
        cell.write(1);
        sim.schedule(SimTime(0), [&cell] { cell.write(2); });
    });
    sim.run();

    EXPECT_EQ(sim.accessLog()->recordCount(), 2u);
    EXPECT_TRUE(sim.accessLog()->findConflicts().empty());
}

TEST(ConflictDetector, SameEventAccessesAreNotAConflict)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{0, "fixture.cell"};

    sim.schedule(SimTime::microseconds(5), [&] {
        cell.write(1);
        cell.write(2);
        (void)cell.read();
    });
    sim.run();

    EXPECT_EQ(sim.accessLog()->recordCount(), 3u);
    EXPECT_TRUE(sim.accessLog()->findConflicts().empty());
}

TEST(ConflictDetector, CancelledEventLeavesNoTrace)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{0, "fixture.cell"};

    sim.schedule(SimTime::microseconds(5), [&] { cell.write(1); });
    const EventId id =
        sim.schedule(SimTime::microseconds(5), [&] { cell.write(2); });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();

    EXPECT_EQ(sim.accessLog()->recordCount(), 1u);
    EXPECT_TRUE(sim.accessLog()->findConflicts().empty());
    EXPECT_EQ(cell.peek(), 1);
}

TEST(ConflictDetector, DistinctCellsDoNotInterfere)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> a{0, "fixture.a"};
    Tracked<int> b{0, "fixture.b"};

    sim.schedule(SimTime::microseconds(5), [&] { a.write(1); });
    sim.schedule(SimTime::microseconds(5), [&] { b.write(1); });
    sim.run();

    EXPECT_TRUE(sim.accessLog()->findConflicts().empty());
}

TEST(ConflictDetector, RingBufferDropsOldestAndCounts)
{
    Simulation sim;
    sim.enableConflictTracking(/*capacity=*/4);
    Tracked<int> cell{0, "fixture.cell"};

    for (int i = 1; i <= 8; ++i) {
        sim.schedule(SimTime::microseconds(i),
                     [&cell] { cell.writeRef() += 1; });
    }
    sim.run();

    auto *log = sim.accessLog();
    EXPECT_EQ(log->recordCount(), 4u);
    EXPECT_EQ(log->droppedRecords(), 4u);
    // The survivors are the most recent accesses, oldest first.
    const auto snap = log->snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front().when, SimTime::microseconds(5).raw());
    EXPECT_EQ(snap.back().when, SimTime::microseconds(8).raw());
}

TEST(ConflictDetector, ScopeRestoresAfterRun)
{
    Simulation sim;
    sim.enableConflictTracking();
    sim.schedule(SimTime::microseconds(1), [] {});
    sim.run();
    EXPECT_EQ(AccessLog::current(), nullptr);
}

TEST(ConflictDetector, ClearResetsTheLog)
{
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{0, "fixture.cell"};
    sim.schedule(SimTime::microseconds(5), [&] { cell.write(1); });
    sim.schedule(SimTime::microseconds(5), [&] { cell.write(2); });
    sim.run();
    ASSERT_EQ(sim.accessLog()->findConflicts().size(), 1u);

    sim.accessLog()->clear();
    EXPECT_EQ(sim.accessLog()->recordCount(), 0u);
    EXPECT_TRUE(sim.accessLog()->findConflicts().empty());
}

TEST(ConflictDetector, CoroutineDelaysLandingOnSameTickAreReported)
{
    // The model-shaped version of the hazard: two coroutines whose
    // delays end on the same tick, both mutating one cell.
    Simulation sim;
    sim.enableConflictTracking();
    Tracked<int> cell{0, "fixture.cell"};

    auto worker = [](Simulation &s, Tracked<int> &c,
                     SimTime d) -> Task<> {
        co_await s.delay(d);
        c.writeRef() += 1;
    };
    sim.spawn(worker(sim, cell, SimTime::microseconds(3)));
    sim.spawn(worker(sim, cell, SimTime::microseconds(3)));
    sim.run();

    EXPECT_EQ(cell.peek(), 2);
    EXPECT_EQ(sim.accessLog()->findConflicts().size(), 1u);
}

#endif // MOLECULE_DETERMINISM_ANALYSIS

} // namespace
