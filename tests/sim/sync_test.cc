/** @file Unit tests for SimEvent, Semaphore and Mailbox. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/sync.hh"

namespace {

using molecule::sim::Mailbox;
using molecule::sim::Semaphore;
using molecule::sim::SemGuard;
using molecule::sim::SimEvent;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

Task<>
waitOn(Simulation &sim, SimEvent &ev, std::vector<SimTime> *log)
{
    co_await ev.wait();
    log->push_back(sim.now());
}

Task<>
triggerAt(Simulation &sim, SimEvent &ev, SimTime t)
{
    co_await sim.delay(t);
    ev.trigger();
}

TEST(SimEvent, WakesAllWaitersAtTriggerTime)
{
    Simulation sim;
    SimEvent ev(sim);
    std::vector<SimTime> log;
    sim.spawn(waitOn(sim, ev, &log));
    sim.spawn(waitOn(sim, ev, &log));
    sim.spawn(triggerAt(sim, ev, 25_us));
    sim.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], 25_us);
    EXPECT_EQ(log[1], 25_us);
}

TEST(SimEvent, LateWaiterPassesThrough)
{
    Simulation sim;
    SimEvent ev(sim);
    ev.trigger();
    std::vector<SimTime> log;
    sim.spawn(waitOn(sim, ev, &log));
    sim.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], 0_us);
}

TEST(SimEvent, ResetReArms)
{
    Simulation sim;
    SimEvent ev(sim);
    ev.trigger();
    ev.reset();
    EXPECT_FALSE(ev.triggered());
    std::vector<SimTime> log;
    sim.spawn(waitOn(sim, ev, &log));
    sim.spawn(triggerAt(sim, ev, 5_us));
    sim.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], 5_us);
}

Task<>
worker(Simulation &sim, Semaphore &cores, SimTime burst,
       std::vector<SimTime> *done)
{
    co_await cores.acquire();
    SemGuard g(cores);
    co_await sim.delay(burst);
    done->push_back(sim.now());
}

TEST(Semaphore, LimitsConcurrency)
{
    Simulation sim;
    Semaphore cores(sim, 2);
    std::vector<SimTime> done;
    for (int i = 0; i < 4; ++i)
        sim.spawn(worker(sim, cores, 10_us, &done));
    sim.run();
    // 2 cores, 4 bursts of 10us -> completions at 10,10,20,20.
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done[0], 10_us);
    EXPECT_EQ(done[1], 10_us);
    EXPECT_EQ(done[2], 20_us);
    EXPECT_EQ(done[3], 20_us);
}

TEST(Semaphore, FifoHandoverCannotBeStolen)
{
    Simulation sim;
    Semaphore sem(sim, 1);
    std::vector<int> order;

    auto holder = [](Simulation &s, Semaphore &m,
                     std::vector<int> *log) -> Task<> {
        co_await m.acquire();
        log->push_back(1);
        co_await s.delay(10_us);
        m.release();
    };
    auto contender = [](Simulation &s, Semaphore &m, int id, SimTime at,
                        std::vector<int> *log) -> Task<> {
        co_await s.delay(at);
        co_await m.acquire();
        log->push_back(id);
        co_await s.delay(10_us);
        m.release();
    };
    sim.spawn(holder(sim, sem, &order));
    sim.spawn(contender(sim, sem, 2, 1_us, &order));  // waits first
    sim.spawn(contender(sim, sem, 3, 10_us, &order)); // arrives at release
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

Task<>
producer(Simulation &sim, Mailbox<int> &box, int n, SimTime gap)
{
    for (int i = 0; i < n; ++i) {
        co_await sim.delay(gap);
        co_await box.put(i);
    }
}

Task<>
consumer(Simulation &sim, Mailbox<int> &box, int n,
         std::vector<std::pair<int, SimTime>> *log)
{
    for (int i = 0; i < n; ++i) {
        int v = co_await box.get();
        log->push_back({v, sim.now()});
    }
}

TEST(Mailbox, DeliversInFifoOrder)
{
    Simulation sim;
    Mailbox<int> box(sim);
    std::vector<std::pair<int, SimTime>> log;
    sim.spawn(consumer(sim, box, 3, &log));
    sim.spawn(producer(sim, box, 3, 5_us));
    sim.run();
    ASSERT_EQ(log.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(log[std::size_t(i)].first, i);
        EXPECT_EQ(log[std::size_t(i)].second,
                  SimTime::microseconds(5 * (i + 1)));
    }
}

TEST(Mailbox, BoundedCapacityBlocksProducer)
{
    Simulation sim;
    Mailbox<int> box(sim, 1);
    std::vector<SimTime> putDone;

    auto fastProducer = [](Simulation &s, Mailbox<int> &b,
                           std::vector<SimTime> *log) -> Task<> {
        for (int i = 0; i < 3; ++i) {
            co_await b.put(i);
            log->push_back(s.now());
        }
    };
    auto slowConsumer = [](Simulation &s, Mailbox<int> &b) -> Task<> {
        for (int i = 0; i < 3; ++i) {
            co_await s.delay(10_us);
            (void)co_await b.get();
        }
    };
    sim.spawn(fastProducer(sim, box, &putDone));
    sim.spawn(slowConsumer(sim, box));
    sim.run();
    ASSERT_EQ(putDone.size(), 3u);
    EXPECT_EQ(putDone[0], 0_us);  // fills the single slot
    EXPECT_EQ(putDone[1], 10_us); // after first get
    EXPECT_EQ(putDone[2], 20_us); // after second get
}

TEST(Mailbox, TryPutRespectsCapacity)
{
    Simulation sim;
    Mailbox<std::string> box(sim, 2);
    EXPECT_TRUE(box.tryPut("a"));
    EXPECT_TRUE(box.tryPut("b"));
    EXPECT_FALSE(box.tryPut("c"));
    EXPECT_EQ(box.size(), 2u);
}

} // namespace
