/** @file Tests for runc: cfork ablation, OCI lifecycle, memory. */

#include <gtest/gtest.h>

#include <memory>

#include "hw/calibration.hh"
#include "hw/computer.hh"
#include "sandbox/runc.hh"

namespace {

namespace calib = molecule::hw::calib;
using molecule::hw::buildDesktop;
using molecule::hw::Computer;
using molecule::os::LocalOs;
using molecule::sandbox::CreateRequest;
using molecule::sandbox::FunctionImage;
using molecule::sandbox::Language;
using molecule::sandbox::RuncRuntime;
using molecule::sandbox::SandboxState;
using molecule::sandbox::StartupPath;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

/** The Fig 11 benchmark function: no extra imports, tiny code. */
FunctionImage
fig11Function()
{
    FunctionImage img;
    img.funcId = "pyfn";
    img.language = Language::Python;
    img.mem.runtimeShared = std::uint64_t(4.5 * (1 << 20));
    img.mem.privateBytes = 8 << 20;
    img.mem.templateExtra = std::uint64_t(3.5 * (1 << 20));
    img.importCost = SimTime(0);
    img.funcLoadCost = SimTime(0);
    return img;
}

struct RuncFixture : ::testing::Test
{
    Simulation sim;
    std::unique_ptr<Computer> computer = buildDesktop(sim);
    LocalOs os{computer->pu(0)};
    RuncRuntime runc{os};
    FunctionImage img = fig11Function();

    SimTime
    timeCreate(StartupPath path, const std::string &id)
    {
        runc.setStartupPath(path);
        bool ok = false;
        const SimTime t0 = sim.now();
        auto doIt = [](RuncRuntime *r, CreateRequest req,
                       bool *out) -> Task<> {
            *out = co_await r->create(req);
        };
        CreateRequest req{id, &img};
        sim.spawn(doIt(&runc, req, &ok));
        sim.run();
        EXPECT_TRUE(ok);
        return sim.now() - t0;
    }

    void
    prepare(int pooledContainers = 4)
    {
        auto prep = [](RuncRuntime *r, const FunctionImage *fi,
                       int pool) -> Task<> {
            bool ok = co_await r->prepareTemplate(*fi);
            EXPECT_TRUE(ok);
            if (pool > 0)
                co_await r->prewarmFunctionContainers(pool);
        };
        sim.spawn(prep(&runc, &img, pooledContainers));
        sim.run();
    }
};

TEST_F(RuncFixture, Fig11aAblationLaddersDown)
{
    prepare();
    const auto baseline = timeCreate(StartupPath::ColdBoot, "s0");
    const auto naive = timeCreate(StartupPath::CforkNaive, "s1");
    const auto func = timeCreate(StartupPath::CforkFuncContainer, "s2");
    const auto opt = timeCreate(StartupPath::CforkCpusetOpt, "s3");

    // Fig 11-a: 85.55 -> 47.25 -> 30.05 -> 8.40 ms (desktop).
    EXPECT_NEAR(baseline.toMilliseconds(), 85.55, 5.0);
    EXPECT_NEAR(naive.toMilliseconds(), 47.25, 3.0);
    EXPECT_NEAR(func.toMilliseconds(), 30.05, 2.0);
    EXPECT_NEAR(opt.toMilliseconds(), 8.40, 1.0);
    // More than 10x faster than the baseline with all optimizations.
    EXPECT_GT(baseline.toMilliseconds() / opt.toMilliseconds(), 9.0);
}

TEST_F(RuncFixture, ColdBootWithoutTemplateStillWorks)
{
    const auto t = timeCreate(StartupPath::CforkCpusetOpt, "s0");
    // No template prepared: create silently falls back to cold boot.
    EXPECT_GT(t.toMilliseconds(), 50.0);
    EXPECT_FALSE(runc.find("s0")->forked);
}

TEST_F(RuncFixture, OciLifecycle)
{
    prepare();
    timeCreate(StartupPath::CforkCpusetOpt, "sb");
    EXPECT_EQ(runc.state("sb"), SandboxState::Created);

    auto startIt = [](RuncRuntime *r, bool *out) -> Task<> {
        *out = co_await r->start("sb");
    };
    bool ok = false;
    sim.spawn(startIt(&runc, &ok));
    sim.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(runc.state("sb"), SandboxState::Running);

    auto killIt = [](RuncRuntime *r) -> Task<> {
        co_await r->kill("sb", 9);
    };
    sim.spawn(killIt(&runc));
    sim.run();
    EXPECT_EQ(runc.state("sb"), SandboxState::Stopped);

    auto destroyIt = [](RuncRuntime *r) -> Task<> {
        co_await r->destroy("sb");
    };
    sim.spawn(destroyIt(&runc));
    sim.run();
    EXPECT_EQ(runc.state("sb"), SandboxState::Unknown);
    EXPECT_EQ(runc.instanceCount(), 0u);
}

TEST_F(RuncFixture, DuplicateSandboxIdRejected)
{
    prepare();
    timeCreate(StartupPath::CforkCpusetOpt, "dup");
    bool ok = true;
    auto doIt = [](RuncRuntime *r, CreateRequest req, bool *out) -> Task<> {
        *out = co_await r->create(req);
    };
    CreateRequest req{"dup", &img};
    sim.spawn(doIt(&runc, req, &ok));
    sim.run();
    EXPECT_FALSE(ok);
}

TEST_F(RuncFixture, ForkedInstanceSharesMemory)
{
    prepare();
    timeCreate(StartupPath::CforkCpusetOpt, "a");
    timeCreate(StartupPath::CforkCpusetOpt, "b");
    // Forked instances: RSS = shared runtime + private heap.
    const auto rss = runc.instanceRss("a");
    EXPECT_EQ(rss, img.mem.runtimeShared + img.mem.privateBytes);
    // PSS < RSS because the runtime region is shared with the
    // template and the sibling.
    EXPECT_LT(runc.instancePss("a"), double(rss));

    // A cold instance shares nothing.
    timeCreate(StartupPath::ColdBoot, "c");
    EXPECT_DOUBLE_EQ(runc.instancePss("c"),
                     double(runc.instanceRss("c")));
}

TEST_F(RuncFixture, PssDropsWithConcurrency)
{
    // Fig 11-c: average PSS falls as more instances share the runtime.
    prepare(20);
    timeCreate(StartupPath::CforkCpusetOpt, "i0");
    const double pss1 = runc.instancePss("i0");
    for (int i = 1; i < 16; ++i)
        timeCreate(StartupPath::CforkCpusetOpt,
                   "i" + std::to_string(i));
    const double pss16 = runc.instancePss("i0");
    // The drop is bounded by the shared fraction of the footprint:
    // private 8 MB + 4.5/2 MB -> private 8 MB + 4.5/17 MB.
    EXPECT_LT(pss16, pss1 * 0.85);
    const double sharedMb = double(img.mem.runtimeShared) / (1 << 20);
    EXPECT_NEAR((pss1 - pss16) / (1 << 20),
                sharedMb / 2 - sharedMb / 17, 0.05);
}

TEST_F(RuncFixture, FirstInvokePaysCowFaults)
{
    prepare();
    timeCreate(StartupPath::CforkCpusetOpt, "sb");
    auto startIt = [](RuncRuntime *r) -> Task<> {
        co_await r->start("sb");
    };
    sim.spawn(startIt(&runc));
    sim.run();

    auto invokeIt = [](RuncRuntime *r, SimTime exec, SimTime *out,
                       Simulation *s) -> Task<> {
        const SimTime t0 = s->now();
        molecule::core::Status st = co_await r->invoke("sb", exec);
        EXPECT_TRUE(st.ok()) << st.toString();
        *out = s->now() - t0;
    };
    SimTime first, second;
    sim.spawn(invokeIt(&runc, 5_ms, &first, &sim));
    sim.run();
    sim.spawn(invokeIt(&runc, 5_ms, &second, &sim));
    sim.run();
    // First invocation: COW faults on ~10% of the shared runtime.
    EXPECT_GT(first, second);
    // Second invocation: pure execution (scaled by desktop factor).
    EXPECT_NEAR(second.toMilliseconds(), 5.0 * 0.75, 0.2);
    // The penalty stays small (sub-millisecond for this footprint).
    EXPECT_LT((first - second).toMilliseconds(), 1.0);
}

TEST_F(RuncFixture, VectorOpsDegenerateToLoops)
{
    prepare();
    runc.setStartupPath(StartupPath::CforkCpusetOpt);
    std::vector<CreateRequest> reqs;
    for (int i = 0; i < 3; ++i)
        reqs.push_back(CreateRequest{"v" + std::to_string(i), &img});
    int created = 0;
    auto doIt = [](RuncRuntime *r, std::vector<CreateRequest> rs,
                   int *out) -> Task<> {
        auto made = co_await r->createVector(rs);
        *out = made.valueOr(-1);
    };
    sim.spawn(doIt(&runc, reqs, &created));
    sim.run();
    EXPECT_EQ(created, 3);
    auto states = runc.stateVector({"v0", "v1", "v2"});
    for (auto s : states)
        EXPECT_EQ(s, SandboxState::Created);
}

} // namespace
