/** @file Tests for runf: vectorized create, Fig 10-c paths, zero-copy. */

#include <gtest/gtest.h>

#include <memory>

#include "hw/calibration.hh"
#include "hw/computer.hh"
#include "sandbox/runf.hh"
#include "sandbox/rung.hh"

namespace {

namespace calib = molecule::hw::calib;
using molecule::hw::buildF1Server;
using molecule::hw::Computer;
using molecule::os::LocalOs;
using molecule::sandbox::CreateRequest;
using molecule::sandbox::FunctionImage;
using molecule::sandbox::Language;
using molecule::sandbox::RunfRuntime;
using molecule::sandbox::RungRuntime;
using molecule::sandbox::SandboxState;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

FunctionImage
kernelImage(const std::string &name, long luts)
{
    FunctionImage img;
    img.funcId = name;
    img.language = Language::FpgaOpenCl;
    img.fpgaResources = {luts, 9000, 30, 60};
    return img;
}

struct RunfFixture : ::testing::Test
{
    Simulation sim;
    std::unique_ptr<Computer> computer = buildF1Server(sim, 1);
    LocalOs hostOs{computer->pu(0)};
    RunfRuntime runf{hostOs, computer->fpga(0)};
    FunctionImage vmult = kernelImage("vmult", 9000);
    FunctionImage madd = kernelImage("madd", 3600);

    SimTime
    timeIt(Task<> task)
    {
        const SimTime t0 = sim.now();
        sim.spawn(std::move(task));
        sim.run();
        return sim.now() - t0;
    }
};

Task<>
createOne(RunfRuntime *r, CreateRequest req, bool *ok)
{
    *ok = co_await r->create(req);
}

Task<>
startOne(RunfRuntime *r, std::string id, bool *ok)
{
    *ok = co_await r->start(id);
}

TEST_F(RunfFixture, Fig10cStartupLadder)
{
    bool ok = false;

    // Baseline: erase + cold program + sandbox prep > 20 s.
    runf.options().eraseBeforeProgram = true;
    runf.options().bitstreamCached = false;
    CreateRequest req{"sb1", &vmult};
    const auto createBaseline = timeIt(createOne(&runf, req, &ok));
    ASSERT_TRUE(ok);
    const auto startBaseline = timeIt(startOne(&runf, "sb1", &ok));
    ASSERT_TRUE(ok);
    const double baselineS =
        (createBaseline + startBaseline).toSeconds();
    EXPECT_GT(baselineS, 20.0);

    // No-Erase: ~3.8 s.
    runf.options().eraseBeforeProgram = false;
    CreateRequest req2{"sb2", &vmult};
    const auto createNoErase = timeIt(createOne(&runf, req2, &ok));
    const auto startNoErase = timeIt(startOne(&runf, "sb2", &ok));
    EXPECT_NEAR((createNoErase + startNoErase).toSeconds(), 3.8, 0.3);

    // Warm-image: bitstream cached host-side, ~1.9 s.
    runf.options().bitstreamCached = true;
    CreateRequest req3{"sb3", &vmult};
    const auto createWarm = timeIt(createOne(&runf, req3, &ok));
    const auto startWarm = timeIt(startOne(&runf, "sb3", &ok));
    EXPECT_NEAR((createWarm + startWarm).toSeconds(), 1.9, 0.2);

    // Warm-sandbox: instance already prepared, ~53 ms to dispatch.
    const auto startAgain = timeIt(startOne(&runf, "sb3", &ok));
    EXPECT_LT(startAgain.toMilliseconds(), 1.0);
}

TEST_F(RunfFixture, WarmSandboxSkipsPrep)
{
    bool ok = false;
    CreateRequest req{"sb", &vmult};
    timeIt(createOne(&runf, req, &ok));
    const auto firstStart = timeIt(startOne(&runf, "sb", &ok));
    EXPECT_NEAR(firstStart.toMilliseconds(), 53.0, 1.0);
    EXPECT_TRUE(runf.warm("sb"));

    // Re-start after a kill: still warm.
    auto killIt = [](RunfRuntime *r) -> Task<> {
        co_await r->kill("sb", 9);
    };
    timeIt(killIt(&runf));
    const auto secondStart = timeIt(startOne(&runf, "sb", &ok));
    EXPECT_LT(secondStart.toMilliseconds(), 1.0);
}

TEST_F(RunfFixture, VectorCreatePacksOneImage)
{
    std::vector<CreateRequest> reqs;
    reqs.push_back(CreateRequest{"v0", &vmult});
    reqs.push_back(CreateRequest{"v1", &madd});
    int created = 0;
    auto doIt = [](RunfRuntime *r, std::vector<CreateRequest> rs,
                   int *out) -> Task<> {
        auto made = co_await r->createVector(rs);
        *out = made.valueOr(0);
    };
    timeIt(doIt(&runf, reqs, &created));
    EXPECT_EQ(created, 2);
    // One programming pass made both functions resident.
    EXPECT_EQ(computer->fpga(0).programCount(), 1);
    EXPECT_TRUE(runf.cached("vmult"));
    EXPECT_TRUE(runf.cached("madd"));
}

TEST_F(RunfFixture, VectorCreateRespectsResourceBudget)
{
    // 200 copies of a 9000-LUT kernel exceed the F1 fabric.
    std::vector<FunctionImage> imgs;
    std::vector<CreateRequest> reqs;
    imgs.reserve(200);
    for (int i = 0; i < 200; ++i) {
        imgs.push_back(kernelImage("k" + std::to_string(i), 9000));
        reqs.push_back(CreateRequest{"s" + std::to_string(i),
                                     &imgs.back()});
    }
    int created = -1;
    auto doIt = [](RunfRuntime *r, const std::vector<CreateRequest> *rs,
                   int *out) -> Task<> {
        auto made = co_await r->createVector(*rs);
        *out = made.valueOr(0);
    };
    timeIt(doIt(&runf, &reqs, &created));
    EXPECT_EQ(created, 0);
    EXPECT_EQ(computer->fpga(0).programCount(), 0);
}

TEST_F(RunfFixture, StartVectorPrepsConcurrently)
{
    // Vectorized start preps sandboxes in parallel (§3.5): N first
    // starts cost ~one prep, not N.
    std::vector<CreateRequest> reqs{{"v0", &vmult}, {"v1", &madd}};
    int created = 0;
    auto createIt = [](RunfRuntime *r, std::vector<CreateRequest> rs,
                       int *out) -> Task<> {
        auto made = co_await r->createVector(rs);
        *out = made.valueOr(0);
    };
    timeIt(createIt(&runf, reqs, &created));
    ASSERT_EQ(created, 2);

    int started = 0;
    auto startVec = [](RunfRuntime *r, std::vector<std::string> ids,
                       int *out) -> Task<> {
        *out = co_await r->startVector(ids);
    };
    std::vector<std::string> ids{"v0", "v1"};
    const auto elapsed = timeIt(startVec(&runf, ids, &started));
    EXPECT_EQ(started, 2);
    EXPECT_NEAR(elapsed.toMilliseconds(),
                calib::kFpgaSandboxPrepCost.toMilliseconds(), 1.0);
}

TEST_F(RunfFixture, DeleteIsStateOnlyAndNextCreateReplaces)
{
    bool ok = false;
    CreateRequest req{"sb", &vmult};
    timeIt(createOne(&runf, req, &ok));
    auto destroyIt = [](RunfRuntime *r) -> Task<> {
        co_await r->destroy("sb");
    };
    const auto deleteTime = timeIt(destroyIt(&runf));
    // "delete will be empty and directly return" (§3.5).
    EXPECT_EQ(deleteTime, SimTime(0));
    EXPECT_EQ(runf.state("sb"), SandboxState::Stopped);
    // The kernel is still resident until the next create.
    EXPECT_TRUE(runf.cached("vmult"));

    CreateRequest req2{"sb2", &madd};
    timeIt(createOne(&runf, req2, &ok));
    EXPECT_FALSE(runf.cached("vmult"));
    EXPECT_TRUE(runf.cached("madd"));
}

TEST_F(RunfFixture, ZeroCopyChainSkipsDma)
{
    std::vector<FunctionImage> chain;
    chain.push_back(kernelImage("f0", 3000));
    chain.push_back(kernelImage("f1", 3000));
    // Chained functions share a DRAM bank (never run concurrently).
    chain[0].dramBank = 0;
    chain[1].dramBank = 0;
    std::vector<CreateRequest> reqs{{"c0", &chain[0]},
                                    {"c1", &chain[1]}};
    int created = 0;
    auto doIt = [](RunfRuntime *r, std::vector<CreateRequest> rs,
                   int *out) -> Task<> {
        auto made = co_await r->createVector(rs);
        *out = made.valueOr(0);
    };
    timeIt(doIt(&runf, reqs, &created));
    ASSERT_EQ(created, 2);
    bool ok = false;
    timeIt(startOne(&runf, "c0", &ok));
    timeIt(startOne(&runf, "c1", &ok));

    const std::uint64_t kb4 = 4096;
    auto invokeIt = [](RunfRuntime *r, std::string id, std::uint64_t in,
                       std::uint64_t out, bool zin, bool zout) -> Task<> {
        co_await r->invoke(id, 20_us, in, out, zin, zout);
    };
    // Copying chain hop: DMA out + DMA in (50-100 us each, §6.5).
    // One statement per measurement (GCC 12 rule, see task.hh).
    SimTime copying = timeIt(invokeIt(&runf, "c0", kb4, kb4, false,
                                      false));
    copying += timeIt(invokeIt(&runf, "c1", kb4, kb4, false, false));
    // Zero-copy hop: output retained in the bank, input read in place.
    SimTime zerocopy = timeIt(invokeIt(&runf, "c0", kb4, kb4, false,
                                       true));
    zerocopy += timeIt(invokeIt(&runf, "c1", kb4, kb4, true, false));
    EXPECT_LT(zerocopy, copying * 0.7);
}

TEST(Rung, GeneralityLifecycleAndInvoke)
{
    Simulation sim;
    auto computer = molecule::hw::buildFullHetero(sim);
    LocalOs hostOs{computer->pu(0)};
    RungRuntime rung{hostOs, computer->gpuDev(0)};
    FunctionImage img;
    img.funcId = "vecadd";
    img.language = Language::CudaCpp;

    bool ok = false;
    auto createIt = [](RungRuntime *r, CreateRequest req,
                       bool *out) -> Task<> {
        *out = co_await r->create(req);
    };
    CreateRequest req{"g0", &img};
    sim.spawn(createIt(&rung, req, &ok));
    sim.run();
    ASSERT_TRUE(ok);
    EXPECT_TRUE(computer->gpuDev(0).resident("vecadd"));

    auto startIt = [](RungRuntime *r, bool *out) -> Task<> {
        *out = co_await r->start("g0");
    };
    sim.spawn(startIt(&rung, &ok));
    sim.run();
    ASSERT_TRUE(ok);

    auto invokeIt = [](RungRuntime *r) -> Task<> {
        co_await r->invoke("g0", 2_ms, 4096, 4096);
    };
    const auto t0 = sim.now();
    sim.spawn(invokeIt(&rung));
    sim.run();
    EXPECT_GT((sim.now() - t0).toMilliseconds(), 2.0);

    auto destroyIt = [](RungRuntime *r) -> Task<> {
        co_await r->destroy("g0");
    };
    sim.spawn(destroyIt(&rung));
    sim.run();
    EXPECT_FALSE(computer->gpuDev(0).resident("vecadd"));
    EXPECT_EQ(rung.state("g0"), SandboxState::Unknown);
}

} // namespace
