/** @file Unit tests for the workload catalog calibration. */

#include <gtest/gtest.h>

#include "hw/calibration.hh"
#include "workloads/catalog.hh"

namespace {

namespace calib = molecule::hw::calib;
using molecule::sandbox::Language;
using molecule::workloads::Catalog;

TEST(Catalog, FunctionBenchIsComplete)
{
    Catalog c;
    const auto names = Catalog::functionBenchNames();
    EXPECT_EQ(names.size(), 8u);
    for (const auto &name : names) {
        ASSERT_TRUE(c.hasCpu(name)) << name;
        const auto &w = c.cpu(name);
        EXPECT_EQ(w.image.funcId, name);
        EXPECT_GT(w.execCost.raw(), 0);
        EXPECT_GE(w.coldExecFactor, 1.0);
        EXPECT_GT(w.image.mem.coldTotal(), 0u);
    }
}

TEST(Catalog, ColdStartDecompositionMatchesFig14aLabels)
{
    // baseline cold e2e = spawn + container + interpreter + import +
    // settle + exec * coldFactor; check two anchor labels.
    Catalog c;
    auto coldMs = [&](const std::string &name) {
        const auto &w = c.cpu(name);
        return (calib::kSpawnProcessCost + calib::kContainerStartCost +
                calib::kPythonColdStart + w.image.importCost +
                calib::kInstanceSettleCost +
                w.execCost * w.coldExecFactor)
            .toMilliseconds();
    };
    EXPECT_NEAR(coldMs("image-resize"), 198.0, 3.0);
    EXPECT_NEAR(coldMs("matmul"), 298.9, 3.0);
    EXPECT_NEAR(coldMs("video-processing"), 38254.0, 120.0);
}

TEST(Catalog, ChainsAreRegistered)
{
    Catalog c;
    for (const auto &fn : Catalog::alexaChain()) {
        ASSERT_TRUE(c.hasCpu(fn));
        EXPECT_EQ(c.cpu(fn).image.language, Language::Node);
    }
    for (const auto &fn : Catalog::mapReduceChain()) {
        ASSERT_TRUE(c.hasCpu(fn));
        EXPECT_EQ(c.cpu(fn).image.language, Language::Python);
    }
}

TEST(Catalog, AlexaExecMatchesFig14eLabel)
{
    // 5 exec + 5 dispatch + 5 HTTP edges = 38.6 ms baseline.
    Catalog c;
    const double exec =
        5 * c.cpu("alexa-front").execCost.toMilliseconds();
    const double overhead =
        5 * (calib::kExpressDispatch + calib::kHttpEdgeEndpointCost +
             calib::kHttpEdgeEndpointCost)
                .toMilliseconds();
    EXPECT_NEAR(exec + overhead, 38.6, 1.0);
}

TEST(Catalog, FpgaKernelModelsAreMonotone)
{
    Catalog c;
    for (const char *name : {"fpga-gzip", "fpga-aml"}) {
        const auto &w = c.fpga(name);
        EXPECT_LT(w.kernelTime(1000).raw(), w.kernelTime(100000).raw());
        EXPECT_LT(w.cpuTime(1000).raw(), w.cpuTime(100000).raw());
    }
}

TEST(Catalog, MatrixKernelsMatchFig2bLabels)
{
    Catalog c;
    EXPECT_DOUBLE_EQ(c.fpga("fpga-mscale").cpuTime(1).toMicroseconds(),
                     192.0);
    EXPECT_DOUBLE_EQ(c.fpga("fpga-madd").cpuTime(1).toMicroseconds(),
                     324.0);
    EXPECT_DOUBLE_EQ(c.fpga("fpga-vmult").cpuTime(1).toMicroseconds(),
                     3551.0);
    // FPGA kernels in the 2.15-2.82x band including overheads
    // (~38-41 us of dispatch+invoke per call).
    for (const auto &name : Catalog::matrixKernels()) {
        const auto &w = c.fpga(name);
        const double ratio =
            w.cpuTime(1).toMicroseconds() /
            (w.kernelTime(1).toMicroseconds() + 38.0);
        EXPECT_GT(ratio, 2.1);
        EXPECT_LT(ratio, 2.9);
    }
}

TEST(Catalog, Table4SlotsCompose)
{
    // 4x (madd + mmult + mscale) + wrapper = Table 4's numbers.
    Catalog c;
    molecule::hw::FpgaResources sum =
        molecule::hw::FpgaResources::wrapperOverhead();
    for (const auto &name : Catalog::matrixKernels()) {
        for (int i = 0; i < 4; ++i)
            sum += c.fpga(name).image.fpgaResources;
    }
    EXPECT_NEAR(double(sum.luts), 119517.0, 2.0);
    EXPECT_EQ(sum.regs, 196996);
    EXPECT_EQ(sum.brams, 486);
    EXPECT_EQ(sum.dsps, 787);
}

TEST(Catalog, UnknownNamesAreFatalButHasIsSafe)
{
    Catalog c;
    EXPECT_FALSE(c.hasCpu("does-not-exist"));
    EXPECT_DEATH((void)c.cpu("does-not-exist"), "unknown CPU workload");
}

} // namespace
