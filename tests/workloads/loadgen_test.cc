/** @file Unit tests for the Poisson/Zipf trace generator. */

#include <gtest/gtest.h>

#include <map>

#include "workloads/loadgen.hh"

namespace {

using molecule::sim::Rng;
using molecule::sim::SimTime;
using molecule::workloads::LoadGenerator;
using molecule::workloads::TraceEvent;

LoadGenerator::Options
opts(double rps, double zipf, int seconds)
{
    LoadGenerator::Options o;
    o.requestsPerSecond = rps;
    o.zipfExponent = zipf;
    o.duration = SimTime::seconds(seconds);
    return o;
}

TEST(LoadGen, ArrivalRateMatches)
{
    Rng rng(1);
    LoadGenerator gen(rng, {"a", "b"}, opts(50, 1.0, 100));
    const auto trace = gen.generate();
    // 50 req/s * 100 s = ~5000 events, +-10%.
    EXPECT_NEAR(double(trace.size()), 5000.0, 500.0);
}

TEST(LoadGen, EventsAreSortedAndBounded)
{
    Rng rng(2);
    LoadGenerator gen(rng, {"a", "b", "c"}, opts(30, 1.1, 60));
    const auto trace = gen.generate();
    ASSERT_FALSE(trace.empty());
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].at, trace[i - 1].at);
    EXPECT_LE(trace.back().at, SimTime::seconds(60));
    EXPECT_GT(trace.front().at.raw(), 0);
}

TEST(LoadGen, ZipfSkewsTowardLowRanks)
{
    Rng rng(3);
    std::vector<std::string> fns{"r0", "r1", "r2", "r3", "r4"};
    LoadGenerator gen(rng, fns, opts(100, 1.5, 100));
    const auto trace = gen.generate();
    std::map<std::string, int> counts;
    for (const auto &ev : trace)
        ++counts[ev.fn];
    EXPECT_GT(counts["r0"], counts["r1"]);
    EXPECT_GT(counts["r1"], counts["r4"]);
    // Rank-0 share approximates its Zipf weight.
    double total = 0;
    for (std::size_t i = 0; i < fns.size(); ++i)
        total += gen.weight(i);
    const double expected = gen.weight(0) / total;
    EXPECT_NEAR(double(counts["r0"]) / double(trace.size()), expected,
                0.05);
}

TEST(LoadGen, UniformWhenExponentZero)
{
    Rng rng(4);
    std::vector<std::string> fns{"a", "b", "c", "d"};
    LoadGenerator gen(rng, fns, opts(100, 0.0, 100));
    const auto trace = gen.generate();
    std::map<std::string, int> counts;
    for (const auto &ev : trace)
        ++counts[ev.fn];
    for (const auto &fn : fns)
        EXPECT_NEAR(double(counts[fn]) / double(trace.size()), 0.25,
                    0.05);
}

TEST(LoadGen, DeterministicGivenSeed)
{
    Rng r1(9), r2(9);
    LoadGenerator g1(r1, {"a", "b"}, opts(20, 1.0, 30));
    LoadGenerator g2(r2, {"a", "b"}, opts(20, 1.0, 30));
    const auto t1 = g1.generate();
    const auto t2 = g2.generate();
    ASSERT_EQ(t1.size(), t2.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].at, t2[i].at);
        EXPECT_EQ(t1[i].fn, t2[i].fn);
    }
}

} // namespace
