/** @file Unit tests for LocalOs processes, FIFOs and containers. */

#include <gtest/gtest.h>

#include "hw/calibration.hh"
#include "hw/computer.hh"
#include "os/kernel.hh"

namespace {

namespace calib = molecule::hw::calib;
using molecule::hw::buildCpuDpuServer;
using molecule::hw::Computer;
using molecule::hw::DpuGeneration;
using molecule::os::Container;
using molecule::os::CpusetMode;
using molecule::os::FifoMessage;
using molecule::os::LocalOs;
using molecule::os::Process;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;

struct OsFixture : ::testing::Test
{
    Simulation sim;
    std::unique_ptr<Computer> computer =
        buildCpuDpuServer(sim, 1, DpuGeneration::Bf1);
    LocalOs hostOs{computer->pu(0)};
    LocalOs dpuOs{computer->pu(1)};
};

Task<>
spawnIt(LocalOs &os, std::string name, std::uint64_t bytes,
        Process **out)
{
    *out = co_await os.spawnProcess(std::move(name), bytes);
}

TEST_F(OsFixture, SpawnCreatesProcessAndChargesMemory)
{
    Process *p = nullptr;
    sim.spawn(spawnIt(hostOs, "python", 10 << 20, &p));
    sim.run();
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->alive());
    EXPECT_EQ(p->addressSpace().rss(), std::uint64_t(10 << 20));
    EXPECT_EQ(hostOs.physicalUsed(), std::uint64_t(10 << 20));
    EXPECT_EQ(sim.now(), calib::kSpawnProcessCost);
    EXPECT_EQ(hostOs.findProcess(p->pid()), p);
}

TEST_F(OsFixture, SpawnOnDpuIsSlower)
{
    Process *p = nullptr;
    sim.spawn(spawnIt(dpuOs, "python", 1 << 20, &p));
    sim.run();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(sim.now(), calib::kSpawnProcessCost * calib::kBf1SwFactor);
}

Task<>
forkIt(LocalOs &os, Process &parent, Process **out)
{
    *out = co_await os.fork(parent, parent.name() + "-child");
}

TEST_F(OsFixture, ForkSharesMemoryCow)
{
    Process *parent = nullptr;
    sim.spawn(spawnIt(hostOs, "tmpl", 8 << 20, &parent));
    sim.run();
    Process *child = nullptr;
    sim.spawn(forkIt(hostOs, *parent, &child));
    sim.run();
    ASSERT_NE(child, nullptr);
    // Fork adds no physical memory: everything is COW-shared.
    EXPECT_EQ(hostOs.physicalUsed(), std::uint64_t(8 << 20));
    EXPECT_EQ(child->addressSpace().rss(), std::uint64_t(8 << 20));
    EXPECT_DOUBLE_EQ(child->addressSpace().pss(), double(4 << 20));
}

TEST_F(OsFixture, ExitReleasesMemory)
{
    Process *p = nullptr;
    sim.spawn(spawnIt(hostOs, "x", 4 << 20, &p));
    sim.run();
    hostOs.exitProcess(*p);
    EXPECT_EQ(hostOs.physicalUsed(), 0u);
    EXPECT_EQ(hostOs.processCount(), 0u);
}

TEST_F(OsFixture, SpawnFailsWhenMemoryExhausted)
{
    Process *p = nullptr;
    // Xeon has 192 GB; ask for more.
    sim.spawn(spawnIt(hostOs, "huge", 200ULL << 30, &p));
    sim.run();
    EXPECT_EQ(p, nullptr);
}

Task<>
fifoWriter(LocalOs &os, std::string name, std::uint64_t bytes)
{
    FifoMessage msg{bytes, "req"};
    co_await os.findFifo(name)->write(msg);
}

Task<>
fifoReader(LocalOs &os, std::string name, SimTime *when,
           FifoMessage *out)
{
    *out = co_await os.findFifo(name)->read();
    *when = os.simulation().now();
}

TEST_F(OsFixture, FifoLatencyMatchesLinuxScaleOnCpu)
{
    hostOs.createFifo("f");
    SimTime when;
    FifoMessage msg;
    sim.spawn(fifoReader(hostOs, "f", &when, &msg));
    sim.spawn(fifoWriter(hostOs, "f", 64));
    sim.run();
    EXPECT_EQ(msg.bytes, 64u);
    EXPECT_EQ(msg.tag, "req");
    // Fig 8: local Linux FIFO on the host CPU ~8-16 us.
    EXPECT_GT(when.toMicroseconds(), 5.0);
    EXPECT_LT(when.toMicroseconds(), 16.0);
}

TEST_F(OsFixture, FifoLatencyOnDpuIsInLinuxDpuBand)
{
    dpuOs.createFifo("f");
    SimTime when;
    FifoMessage msg;
    sim.spawn(fifoReader(dpuOs, "f", &when, &msg));
    sim.spawn(fifoWriter(dpuOs, "f", 2048));
    sim.run();
    // Fig 8: Linux FIFO on BF-1 tops out below ~100 us at 2 KB.
    EXPECT_GT(when.toMicroseconds(), 30.0);
    EXPECT_LT(when.toMicroseconds(), 110.0);
}

TEST_F(OsFixture, FifoGrowsWithMessageSize)
{
    hostOs.createFifo("a");
    hostOs.createFifo("b");
    SimTime t16, t2048;
    FifoMessage m;
    sim.spawn(fifoReader(hostOs, "a", &t16, &m));
    sim.spawn(fifoWriter(hostOs, "a", 16));
    sim.run();
    Simulation sim2;
    // fresh sim to avoid clock offsets: reuse fixture's second FIFO
    SimTime start = sim.now();
    sim.spawn(fifoReader(hostOs, "b", &t2048, &m));
    sim.spawn(fifoWriter(hostOs, "b", 2048));
    sim.run();
    EXPECT_GT((t2048 - start).raw(), t16.raw());
}

TEST_F(OsFixture, FifoNamesAreManaged)
{
    EXPECT_EQ(hostOs.findFifo("nope"), nullptr);
    hostOs.createFifo("x");
    EXPECT_NE(hostOs.findFifo("x"), nullptr);
    hostOs.removeFifo("x");
    EXPECT_EQ(hostOs.findFifo("x"), nullptr);
}

Task<>
makeContainer(LocalOs &os, std::string id, Container **out)
{
    *out = co_await os.containers().create(std::move(id));
}

Task<>
attachIt(LocalOs &os, Container &c, Process &p)
{
    co_await os.containers().attach(c, p);
}

TEST_F(OsFixture, ContainerCreateAttachDestroy)
{
    Container *c = nullptr;
    sim.spawn(makeContainer(hostOs, "func-1", &c));
    sim.run();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(sim.now(), calib::kContainerStartCost);
    EXPECT_EQ(hostOs.containers().find("func-1"), c);

    Process *p = nullptr;
    sim.spawn(spawnIt(hostOs, "worker", 1 << 20, &p));
    sim.run();
    const auto t0 = sim.now();
    sim.spawn(attachIt(hostOs, *c, *p));
    sim.run();
    // Stock kernel: namespace reconfig + semaphore cpuset attach.
    EXPECT_EQ(sim.now() - t0, hostOs.scaledSw(calib::kNamespaceReconfigCost +
                                              calib::kCpusetAttachSemaphore));
    EXPECT_EQ(c->processes().size(), 1u);

    auto d = [](LocalOs &os, Container &cc) -> Task<> {
        co_await os.containers().destroy(cc);
    };
    sim.spawn(d(hostOs, *c));
    sim.run();
    EXPECT_EQ(hostOs.containers().find("func-1"), nullptr);
}

TEST_F(OsFixture, CpusetMutexPatchIsFaster)
{
    hostOs.containers().setCpusetMode(CpusetMode::MutexPatch);
    Container *c = nullptr;
    sim.spawn(makeContainer(hostOs, "c", &c));
    sim.run();
    Process *p = nullptr;
    sim.spawn(spawnIt(hostOs, "w", 1 << 20, &p));
    sim.run();
    const auto t0 = sim.now();
    sim.spawn(attachIt(hostOs, *c, *p));
    sim.run();
    const auto mutexCost = sim.now() - t0;
    EXPECT_LT(mutexCost,
              hostOs.scaledSw(calib::kCpusetAttachSemaphore));
}

TEST_F(OsFixture, ConcurrentCpusetAttachesConvoy)
{
    // The global cpuset lock serializes concurrent attaches: 4 stock
    // attaches take ~4x the lock hold time.
    Container *c = nullptr;
    sim.spawn(makeContainer(hostOs, "c", &c));
    sim.run();
    std::vector<Process *> procs(4, nullptr);
    for (int i = 0; i < 4; ++i)
        sim.spawn(spawnIt(hostOs, "w" + std::to_string(i), 1 << 20,
                          &procs[std::size_t(i)]));
    sim.run();
    const auto t0 = sim.now();
    for (auto *p : procs)
        sim.spawn(attachIt(hostOs, *c, *p));
    sim.run();
    const auto elapsed = sim.now() - t0;
    const auto hold = hostOs.scaledSw(calib::kCpusetAttachSemaphore);
    EXPECT_GE(elapsed, hold * 3.9);
}

} // namespace
