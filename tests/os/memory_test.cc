/** @file Unit tests for region-based RSS/PSS/COW accounting. */

#include <gtest/gtest.h>

#include "os/memory.hh"

namespace {

using molecule::os::AddressSpace;

TEST(Memory, PrivateMappingCountsFullyEverywhere)
{
    AddressSpace as;
    as.mapPrivate("heap", 1000);
    EXPECT_EQ(as.rss(), 1000u);
    EXPECT_DOUBLE_EQ(as.pss(), 1000.0);
    EXPECT_EQ(as.privateBytes(), 1000u);
}

TEST(Memory, SharedMappingSplitsPss)
{
    AddressSpace a, b;
    auto region = a.mapPrivate("runtime", 1000);
    b.mapShared(region);
    EXPECT_EQ(a.rss(), 1000u);
    EXPECT_EQ(b.rss(), 1000u);
    EXPECT_DOUBLE_EQ(a.pss(), 500.0);
    EXPECT_DOUBLE_EQ(b.pss(), 500.0);
    EXPECT_EQ(a.privateBytes(), 0u);
}

TEST(Memory, ForkSharesEverything)
{
    AddressSpace parent, child;
    parent.mapPrivate("runtime", 800);
    parent.mapPrivate("heap", 200);
    parent.forkInto(child);
    EXPECT_EQ(child.rss(), 1000u);
    EXPECT_DOUBLE_EQ(child.pss(), 500.0);
    EXPECT_DOUBLE_EQ(parent.pss(), 500.0);
}

TEST(Memory, CowTouchMovesBytesPrivate)
{
    AddressSpace parent, child;
    auto region = parent.mapPrivate("runtime", 1000);
    parent.forkInto(child);
    const auto pages = child.touchCow(region, 400);
    EXPECT_EQ(pages, (400 + 4095) / 4096);
    // child: 400 private + 600/2 shared
    EXPECT_DOUBLE_EQ(child.pss(), 400.0 + 300.0);
    // parent still shares the whole region view
    EXPECT_DOUBLE_EQ(parent.pss(), 500.0);
    // RSS unchanged: copied pages replace shared ones in the view.
    EXPECT_EQ(child.rss(), 1000u);
    EXPECT_EQ(child.privateBytes(), 400u);
}

TEST(Memory, CowTouchIsCappedAtRegionSize)
{
    AddressSpace a, b;
    auto region = a.mapPrivate("r", 100);
    a.forkInto(b);
    EXPECT_GT(b.touchCow(region, 1000), 0);
    EXPECT_EQ(b.touchCow(region, 1), 0);
    EXPECT_DOUBLE_EQ(b.pss(), 100.0);
}

TEST(Memory, UnmapReleasesAndLastUnmapFreesPhysical)
{
    std::int64_t physical = 0;
    auto hook = [&](std::int64_t d) {
        physical += d;
        return true;
    };
    AddressSpace a{hook}, b{hook};
    auto region = a.mapPrivate("r", 1000);
    EXPECT_EQ(physical, 1000);
    b.mapShared(region);
    EXPECT_EQ(physical, 1000); // sharing is free
    b.touchCow(region, 300);
    EXPECT_EQ(physical, 1300); // copies are physical
    b.unmap(region);
    EXPECT_EQ(physical, 1000); // copies released
    a.unmap(region);
    EXPECT_EQ(physical, 0); // last unmap releases the region
}

TEST(Memory, AdmissionFailureIsReported)
{
    std::int64_t physical = 0;
    const std::int64_t cap = 1500;
    auto hook = [&](std::int64_t d) {
        if (d > 0 && physical + d > cap)
            return false;
        physical += d;
        return true;
    };
    AddressSpace a{hook};
    EXPECT_NE(a.mapPrivate("one", 1000), nullptr);
    EXPECT_EQ(a.mapPrivate("two", 1000), nullptr);
    EXPECT_EQ(a.rss(), 1000u);

    AddressSpace b{hook};
    auto r = a.findRegion("one");
    b.mapShared(r);
    EXPECT_EQ(b.touchCow(r, 1000), -1); // copy would exceed capacity
}

TEST(Memory, ClearUnmapsEverything)
{
    std::int64_t physical = 0;
    auto hook = [&](std::int64_t d) {
        physical += d;
        return true;
    };
    AddressSpace a{hook};
    a.mapPrivate("x", 100);
    a.mapPrivate("y", 200);
    a.clear();
    EXPECT_EQ(a.rss(), 0u);
    EXPECT_EQ(physical, 0);
    EXPECT_EQ(a.mappingCount(), 0u);
}

TEST(Memory, FindRegionByLabel)
{
    AddressSpace a;
    a.mapPrivate("runtime", 100);
    EXPECT_NE(a.findRegion("runtime"), nullptr);
    EXPECT_EQ(a.findRegion("missing"), nullptr);
}

TEST(Memory, PssSumApproximatesPhysicalAcrossSharers)
{
    // Property: sum of PSS over all address spaces tracks physical
    // bytes. The model divides a region's shared portion by the full
    // sharer count even after some sharers COW-copied parts of it, so
    // the sum *undercounts* by at most the copied bytes.
    std::int64_t physical = 0;
    auto hook = [&](std::int64_t d) {
        physical += d;
        return true;
    };
    AddressSpace t{hook};
    t.mapPrivate("runtime", 5000);
    t.mapPrivate("tmpl", 1500);

    std::vector<AddressSpace> children;
    for (int i = 0; i < 8; ++i) {
        AddressSpace c{hook};
        t.findRegion("runtime");
        c.mapShared(t.findRegion("runtime"));
        c.mapPrivate("priv" + std::to_string(i), 700);
        c.touchCow(t.findRegion("runtime"), 123 * (i + 1));
        children.push_back(std::move(c));
    }
    double pssSum = t.pss();
    std::uint64_t copiedTotal = 0;
    for (int i = 0; i < 8; ++i)
        copiedTotal += std::uint64_t(123 * (i + 1));
    for (auto &c : children)
        pssSum += c.pss();
    EXPECT_LE(pssSum, double(physical) + 1e-6);
    EXPECT_GE(pssSum, double(physical - std::int64_t(copiedTotal)) - 1e-6);
}

} // namespace
