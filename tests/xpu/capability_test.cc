/** @file Unit tests for distributed capabilities and identifiers. */

#include <gtest/gtest.h>

#include "xpu/capability.hh"

namespace {

using molecule::xpu::CapabilityStore;
using molecule::xpu::CapGroup;
using molecule::xpu::DistributedObject;
using molecule::xpu::hasPerm;
using molecule::xpu::ObjId;
using molecule::xpu::ObjType;
using molecule::xpu::Perm;
using molecule::xpu::XpuPid;

TEST(XpuPid, EncodeDecodeRoundTrips)
{
    XpuPid p{3, 12345};
    EXPECT_EQ(XpuPid::decode(p.encode()), p);
    EXPECT_TRUE(p.valid());
    EXPECT_FALSE(XpuPid{}.valid());
    EXPECT_EQ(p.toString(), "pu3:12345");
}

TEST(XpuPid, EncodingPartitionsByPu)
{
    // Same local pid on different PUs must encode differently: this is
    // the static partitioning that removes pid synchronization (§3.2).
    XpuPid a{0, 42}, b{1, 42};
    EXPECT_NE(a.encode(), b.encode());
}

TEST(Perm, BitOperations)
{
    Perm rw = Perm::Read | Perm::Write;
    EXPECT_TRUE(hasPerm(rw, Perm::Read));
    EXPECT_TRUE(hasPerm(rw, Perm::Write));
    EXPECT_FALSE(hasPerm(rw, Perm::Owner));
    EXPECT_TRUE(hasPerm(rw, rw));
    EXPECT_FALSE(hasPerm(Perm::Read, rw));
    EXPECT_EQ(rw & Perm::Read, Perm::Read);
    EXPECT_EQ(rw & ~Perm::Read & ~Perm::Write, Perm::None);
}

TEST(CapGroup, AddRemoveLookup)
{
    CapGroup g(XpuPid{0, 1});
    g.add(7, Perm::Read);
    g.add(7, Perm::Write);
    EXPECT_TRUE(g.has(7, Perm::Read | Perm::Write));
    g.remove(7, Perm::Write);
    EXPECT_TRUE(g.has(7, Perm::Read));
    EXPECT_FALSE(g.has(7, Perm::Write));
    g.remove(7, Perm::Read);
    EXPECT_EQ(g.lookup(7), Perm::None);
    EXPECT_EQ(g.size(), 0u);
}

TEST(CapabilityStore, IdAllocationIsPartitionedByPu)
{
    CapabilityStore a(0), b(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_NE(a.allocateId(), b.allocateId());
}

TEST(CapabilityStore, RegisterFindRemoveObject)
{
    CapabilityStore store(0);
    DistributedObject obj;
    obj.id = store.allocateId();
    obj.type = ObjType::Ipc;
    obj.owner = XpuPid{0, 10};
    obj.homePu = 0;
    obj.uuid = "alexa/front";
    store.registerObject(obj);

    ASSERT_NE(store.findObject(obj.id), nullptr);
    ASSERT_NE(store.findByUuid("alexa/front"), nullptr);
    EXPECT_EQ(store.findByUuid("alexa/front")->id, obj.id);
    EXPECT_EQ(store.findByUuid("missing"), nullptr);

    store.removeObject(obj.id);
    EXPECT_EQ(store.findObject(obj.id), nullptr);
    EXPECT_EQ(store.findByUuid("alexa/front"), nullptr);
}

TEST(CapabilityStore, GrantRevokeCheck)
{
    CapabilityStore store(0);
    const XpuPid alice{0, 1}, bob{1, 2};
    const ObjId obj = store.allocateId();

    store.applyGrant(alice, obj, Perm::Read | Perm::Write | Perm::Owner);
    store.applyGrant(bob, obj, Perm::Read);

    EXPECT_TRUE(store.check(alice, obj, Perm::Owner));
    EXPECT_TRUE(store.check(bob, obj, Perm::Read));
    EXPECT_FALSE(store.check(bob, obj, Perm::Write));

    store.applyRevoke(bob, obj, Perm::Read);
    EXPECT_FALSE(store.check(bob, obj, Perm::Read));
    // Revoking from an unknown pid is a no-op.
    store.applyRevoke(XpuPid{5, 5}, obj, Perm::Read);
}

TEST(CapabilityStore, ChecksAreDenyByDefault)
{
    CapabilityStore store(0);
    EXPECT_FALSE(store.check(XpuPid{0, 1}, 1234, Perm::Read));
    EXPECT_EQ(store.lookup(XpuPid{0, 1}, 1234), Perm::None);
}

} // namespace
