/** @file Unit tests for the XPUcall transport cost models (Fig 7). */

#include <gtest/gtest.h>

#include "hw/calibration.hh"
#include "hw/pu.hh"
#include "xpu/transport.hh"

namespace {

namespace calib = molecule::hw::calib;
using molecule::hw::bluefield1Descriptor;
using molecule::hw::ProcessingUnit;
using molecule::hw::xeon8160Descriptor;
using molecule::sim::Simulation;
using molecule::xpu::Transport;
using molecule::xpu::TransportKind;

struct TransportFixture : ::testing::Test
{
    Simulation sim;
    ProcessingUnit cpu{sim, 0, xeon8160Descriptor()};
    ProcessingUnit dpu{sim, 1, bluefield1Descriptor(0)};
};

TEST_F(TransportFixture, FifoRoundTripIsTwoIpcs)
{
    // Fig 7-a: request and response each cost a full FIFO one-way.
    Transport t(TransportKind::Fifo);
    const auto req = t.requestCost(dpu, 64);
    const auto res = t.responseCost(dpu, 64);
    EXPECT_EQ(req, res);
    // ~2 syscalls + wakeup at BF-1 speed: tens of microseconds.
    EXPECT_GT(req.toMicroseconds(), 30.0);
}

TEST_F(TransportFixture, MpscRemovesTheRequestIpc)
{
    Transport fifo(TransportKind::Fifo);
    Transport mpsc(TransportKind::Mpsc);
    EXPECT_LT(mpsc.requestCost(dpu, 64), fifo.requestCost(dpu, 64));
    // Responses still go through the FIFO (Fig 7-b).
    EXPECT_EQ(mpsc.responseCost(dpu, 64), fifo.responseCost(dpu, 64));
}

TEST_F(TransportFixture, PollingRemovesTheResponseIpcToo)
{
    Transport mpsc(TransportKind::Mpsc);
    Transport poll(TransportKind::MpscPoll);
    EXPECT_EQ(poll.requestCost(dpu, 64), mpsc.requestCost(dpu, 64));
    EXPECT_LT(poll.responseCost(dpu, 64), mpsc.responseCost(dpu, 64));
    // Shared-memory polling response: single-digit microseconds.
    EXPECT_LT(poll.responseCost(dpu, 64).toMicroseconds(), 10.0);
}

TEST_F(TransportFixture, CpuXpucallIsCheapEnoughToSkipOptimizing)
{
    // §5: "about 20 us" for the naive XPUcall on the host CPU, which
    // is why the paper leaves the CPU on the FIFO transport.
    Transport fifo(TransportKind::Fifo);
    const auto total = fifo.requestCost(cpu, 64) +
                       calib::kShimHandleCost +
                       fifo.responseCost(cpu, 64);
    EXPECT_GT(total.toMicroseconds(), 10.0);
    EXPECT_LT(total.toMicroseconds(), 30.0);
}

TEST_F(TransportFixture, DpuNaiveXpucallCostsAbout100us)
{
    // §5: "100 us in our Bluefield-1 DPU" for the two-IPC XPUcall.
    Transport fifo(TransportKind::Fifo);
    const auto total = fifo.requestCost(dpu, 64) +
                       dpu.swCost(calib::kShimHandleCost) +
                       fifo.responseCost(dpu, 64);
    EXPECT_NEAR(total.toMicroseconds(), 100.0, 25.0);
}

TEST_F(TransportFixture, OnlyFifoPathScalesWithMessageSize)
{
    Transport fifo(TransportKind::Fifo);
    Transport poll(TransportKind::MpscPoll);
    EXPECT_GT(fifo.requestCost(dpu, 4096), fifo.requestCost(dpu, 16));
    // MPSC entries only name the caller; bulk rides shared memory.
    EXPECT_EQ(poll.requestCost(dpu, 4096), poll.requestCost(dpu, 16));
}

TEST(TransportNames, ToStringMatchesFig8Legend)
{
    EXPECT_STREQ(toString(TransportKind::Fifo), "nIPC-Base");
    EXPECT_STREQ(toString(TransportKind::Mpsc), "nIPC-MPSC");
    EXPECT_STREQ(toString(TransportKind::MpscPoll), "nIPC-Poll");
}

} // namespace
