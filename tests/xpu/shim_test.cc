/** @file Integration tests for XPU-Shim: nIPC, capabilities, xSpawn. */

#include <gtest/gtest.h>

#include <memory>

#include "core/status.hh"
#include "hw/computer.hh"
#include "xpu/client.hh"
#include "xpu/shim.hh"

namespace {

using molecule::core::Errc;
using molecule::hw::buildCpuDpuServer;
using molecule::hw::Computer;
using molecule::hw::DpuGeneration;
using molecule::os::LocalOs;
using molecule::os::Process;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;
using namespace molecule::xpu;

namespace core = molecule::core;

using FdOutcome = core::Expected<XpuFd>;
using ReadOutcome = core::Expected<molecule::os::FifoMessage>;
using SpawnOutcome = core::Expected<XpuPid>;

/** Placeholder for an outcome slot a coroutine fills later. */
template <typename T>
core::Expected<T>
pending()
{
    return core::Error(Errc::InvalidArgument, "not run");
}

/**
 * Host CPU + 2 BF-1 DPUs, one shim each, one process per PU with an
 * attached XPUcall client.
 */
struct ShimFixture : ::testing::Test
{
    Simulation sim;
    std::unique_ptr<Computer> computer =
        buildCpuDpuServer(sim, 2, DpuGeneration::Bf1);
    LocalOs cpuOs{computer->pu(0)};
    LocalOs dpu1Os{computer->pu(1)};
    LocalOs dpu2Os{computer->pu(2)};
    XpuShimNetwork net{*computer};
    XpuShim *cpuShim = net.addShim(cpuOs, TransportKind::Fifo);
    XpuShim *dpu1Shim = net.addShim(dpu1Os, TransportKind::MpscPoll);
    XpuShim *dpu2Shim = net.addShim(dpu2Os, TransportKind::MpscPoll);
    Process *cpuProc = nullptr;
    Process *dpu1Proc = nullptr;
    std::unique_ptr<XpuClient> cpuClient;
    std::unique_ptr<XpuClient> dpu1Client;

    void
    SetUp() override
    {
        auto boot = [](ShimFixture *f) -> Task<> {
            f->cpuProc = co_await f->cpuOs.spawnProcess("fn-cpu", 1 << 20);
            f->dpu1Proc =
                co_await f->dpu1Os.spawnProcess("fn-dpu", 1 << 20);
        };
        sim.spawn(boot(this));
        sim.run();
        ASSERT_NE(cpuProc, nullptr);
        ASSERT_NE(dpu1Proc, nullptr);
        cpuClient = std::make_unique<XpuClient>(*cpuShim, *cpuProc);
        dpu1Client = std::make_unique<XpuClient>(*dpu1Shim, *dpu1Proc);
    }
};

Task<>
initFifo(XpuClient &client, std::string uuid, FdOutcome *out)
{
    FdOutcome r = co_await client.xfifoInit(uuid);
    *out = std::move(r);
}

Task<>
connectFifo(XpuClient &client, std::string uuid, FdOutcome *out)
{
    FdOutcome r = co_await client.xfifoConnect(uuid);
    *out = std::move(r);
}

Task<>
grantIt(XpuClient &client, XpuPid target, ObjId obj, Perm perm,
        core::Status *out)
{
    *out = co_await client.grantCap(target, obj, perm);
}

TEST_F(ShimFixture, FifoInitRegistersEverywhere)
{
    FdOutcome r = pending<XpuFd>();
    sim.spawn(initFifo(*cpuClient, "self/cpu-fn", &r));
    sim.run();
    ASSERT_TRUE(r.ok()) << r.error().toString();
    EXPECT_GE(r.value(), 3);
    // Immediate sync: every shim can resolve the uuid locally.
    EXPECT_NE(cpuShim->caps().findByUuid("self/cpu-fn"), nullptr);
    EXPECT_NE(dpu1Shim->caps().findByUuid("self/cpu-fn"), nullptr);
    EXPECT_NE(dpu2Shim->caps().findByUuid("self/cpu-fn"), nullptr);
    EXPECT_EQ(cpuShim->homedFifoCount(), 1u);
    EXPECT_EQ(dpu1Shim->homedFifoCount(), 0u);
}

TEST_F(ShimFixture, DuplicateUuidIsRejected)
{
    FdOutcome a = pending<XpuFd>();
    FdOutcome b = pending<XpuFd>();
    sim.spawn(initFifo(*cpuClient, "dup", &a));
    sim.run();
    sim.spawn(initFifo(*dpu1Client, "dup", &b));
    sim.run();
    EXPECT_TRUE(a.ok());
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(b.error().code(), Errc::AlreadyExists);
}

TEST_F(ShimFixture, ConnectRequiresCapability)
{
    FdOutcome fifo = pending<XpuFd>();
    sim.spawn(initFifo(*cpuClient, "guarded", &fifo));
    sim.run();
    ASSERT_TRUE(fifo.ok());

    // Unprivileged remote process cannot connect...
    FdOutcome denied = pending<XpuFd>();
    sim.spawn(connectFifo(*dpu1Client, "guarded", &denied));
    sim.run();
    ASSERT_FALSE(denied.ok());
    EXPECT_EQ(denied.error().code(), Errc::NoPermission);

    // ...until the owner grants it write permission.
    core::Status st;
    const ObjId obj = cpuClient->objectOf(fifo.value());
    sim.spawn(grantIt(*cpuClient, dpu1Client->xpuPid(), obj, Perm::Write,
                      &st));
    sim.run();
    EXPECT_TRUE(st.ok()) << st.toString();

    FdOutcome ok = pending<XpuFd>();
    sim.spawn(connectFifo(*dpu1Client, "guarded", &ok));
    sim.run();
    EXPECT_TRUE(ok.ok());
}

TEST_F(ShimFixture, GrantRequiresOwner)
{
    FdOutcome fifo = pending<XpuFd>();
    sim.spawn(initFifo(*cpuClient, "owned", &fifo));
    sim.run();
    const ObjId obj = cpuClient->objectOf(fifo.value());

    // dpu1 has no owner bit: granting to itself must fail.
    core::Status st;
    sim.spawn(grantIt(*dpu1Client, dpu1Client->xpuPid(), obj, Perm::Read,
                      &st));
    sim.run();
    EXPECT_EQ(st.code(), Errc::NoPermission);
}

TEST_F(ShimFixture, RevokedPermissionStopsConnects)
{
    FdOutcome fifo = pending<XpuFd>();
    sim.spawn(initFifo(*cpuClient, "revocable", &fifo));
    sim.run();
    const ObjId obj = cpuClient->objectOf(fifo.value());
    core::Status st;
    sim.spawn(grantIt(*cpuClient, dpu1Client->xpuPid(), obj, Perm::Read,
                      &st));
    sim.run();

    auto revokeIt = [](XpuClient &c, XpuPid t, ObjId o,
                       core::Status *out) -> Task<> {
        *out = co_await c.revokeCap(t, o, Perm::Read);
    };
    sim.spawn(revokeIt(*cpuClient, dpu1Client->xpuPid(), obj, &st));
    sim.run();
    EXPECT_TRUE(st.ok()) << st.toString();

    FdOutcome denied = pending<XpuFd>();
    sim.spawn(connectFifo(*dpu1Client, "revocable", &denied));
    sim.run();
    ASSERT_FALSE(denied.ok());
    EXPECT_EQ(denied.error().code(), Errc::NoPermission);
}

struct NipcResult
{
    core::Status writeStatus;
    SimTime writeLatency;
    molecule::os::FifoMessage received;
};

Task<>
nipcWriter(XpuClient &client, std::string uuid, std::uint64_t bytes,
           NipcResult *out, Simulation &sim)
{
    FdOutcome fd = co_await client.xfifoConnect(uuid);
    const XpuFd rawFd = fd.ok() ? fd.value() : XpuFd(-1);
    const SimTime start = sim.now();
    out->writeStatus = co_await client.xfifoWrite(rawFd, bytes, "req");
    out->writeLatency = sim.now() - start;
}

Task<>
nipcReader(XpuClient &client, std::string uuid, NipcResult *out)
{
    FdOutcome fd = co_await client.xfifoInit(uuid);
    ReadOutcome r = co_await client.xfifoRead(fd.value());
    if (r.ok())
        out->received = r.value();
}

TEST_F(ShimFixture, CrossPuWriteDeliversAndLandsInPaperBand)
{
    // DPU caller writes a CPU-homed fifo (the Fig 8 measurement).
    NipcResult res;
    sim.spawn(nipcReader(*cpuClient, "nipc", &res));
    sim.run();
    core::Status st;
    const ObjId obj = cpuShim->caps().findByUuid("nipc")->id;
    sim.spawn(grantIt(*cpuClient, dpu1Client->xpuPid(), obj, Perm::Write,
                      &st));
    sim.run();
    sim.spawn(nipcWriter(*dpu1Client, "nipc", 64, &res, sim));
    sim.run();
    EXPECT_TRUE(res.writeStatus.ok()) << res.writeStatus.toString();
    EXPECT_EQ(res.received.bytes, 64u);
    EXPECT_EQ(res.received.tag, "req");
    // nIPC-Poll on BF-1: ~25 us (§6.1).
    EXPECT_GT(res.writeLatency.toMicroseconds(), 12.0);
    EXPECT_LT(res.writeLatency.toMicroseconds(), 45.0);
}

TEST_F(ShimFixture, TransportsOrderAsInFig8)
{
    // Base (FIFO) > MPSC > Poll on the same write path.
    auto measure = [&](TransportKind kind) {
        dpu1Shim->setTransport(kind);
        static int counter = 0;
        std::string uuid = "fig8-" + std::to_string(counter++);
        NipcResult res;
        sim.spawn(nipcReader(*cpuClient, uuid, &res));
        sim.run();
        core::Status st;
        const ObjId obj = cpuShim->caps().findByUuid(uuid)->id;
        sim.spawn(grantIt(*cpuClient, dpu1Client->xpuPid(), obj,
                          Perm::Write, &st));
        sim.run();
        sim.spawn(nipcWriter(*dpu1Client, uuid, 512, &res, sim));
        sim.run();
        return res.writeLatency;
    };
    const auto base = measure(TransportKind::Fifo);
    const auto mpsc = measure(TransportKind::Mpsc);
    const auto poll = measure(TransportKind::MpscPoll);
    EXPECT_GT(base, mpsc);
    EXPECT_GT(mpsc, poll);
    // Fig 8: base lands in the ~100-250 us band on BF-1.
    EXPECT_GT(base.toMicroseconds(), 80.0);
    EXPECT_LT(base.toMicroseconds(), 260.0);
}

TEST_F(ShimFixture, WriteWithoutCapabilityIsDenied)
{
    NipcResult res;
    sim.spawn(nipcReader(*cpuClient, "locked", &res));
    sim.run();
    // No grant: the connect inside nipcWriter fails, then the write on
    // the invalid fd reports InvalidArgument.
    sim.spawn(nipcWriter(*dpu1Client, "locked", 64, &res, sim));
    sim.run();
    EXPECT_EQ(res.writeStatus.code(), Errc::InvalidArgument);
}

TEST_F(ShimFixture, CloseReclaimsLazily)
{
    FdOutcome fifo = pending<XpuFd>();
    sim.spawn(initFifo(*cpuClient, "transient", &fifo));
    sim.run();
    EXPECT_EQ(cpuShim->homedFifoCount(), 1u);

    auto closeIt = [](XpuClient &c, XpuFd fd,
                      core::Status *out) -> Task<> {
        *out = co_await c.xfifoClose(fd);
    };
    core::Status st;
    sim.spawn(closeIt(*cpuClient, fifo.value(), &st));
    sim.run();
    EXPECT_TRUE(st.ok()) << st.toString();
    // Backing queue reclaimed immediately on the home PU...
    EXPECT_EQ(cpuShim->homedFifoCount(), 0u);
    // ...but remote replicas are updated lazily (batched).
    EXPECT_NE(dpu1Shim->caps().findByUuid("transient"), nullptr);
    EXPECT_EQ(cpuShim->lazyQueueDepth(), 1u);

    auto flushIt = [](XpuShim *s) -> Task<> { co_await s->flushLazy(); };
    sim.spawn(flushIt(cpuShim));
    sim.run();
    EXPECT_EQ(dpu1Shim->caps().findByUuid("transient"), nullptr);
    EXPECT_EQ(cpuShim->lazyQueueDepth(), 0u);
}

TEST_F(ShimFixture, XspawnStartsProcessOnTargetPu)
{
    bool hookRan = false;
    Process *spawned = nullptr;
    net.registerProgram("executor",
                        [&](XpuShim &shim, Process &proc) {
                            hookRan = true;
                            spawned = &proc;
                            EXPECT_EQ(shim.puId(), 2);
                        });
    SpawnOutcome r = pending<XpuPid>();
    auto spawnIt = [](XpuClient &c, SpawnOutcome *out) -> Task<> {
        std::vector<CapGrant> capv;
        SpawnOutcome s = co_await c.xspawn(2, "executor", capv);
        *out = std::move(s);
    };
    sim.spawn(spawnIt(*cpuClient, &r));
    sim.run();
    ASSERT_TRUE(r.ok()) << r.error().toString();
    EXPECT_EQ(r.value().pu, 2);
    EXPECT_TRUE(hookRan);
    ASSERT_NE(spawned, nullptr);
    EXPECT_EQ(spawned->name(), "executor");
    EXPECT_EQ(dpu2Os.findProcess(r.value().local), spawned);
}

TEST_F(ShimFixture, XspawnGrantsCapvExplicitly)
{
    FdOutcome fifo = pending<XpuFd>();
    sim.spawn(initFifo(*cpuClient, "for-child", &fifo));
    sim.run();
    const ObjId obj = cpuClient->objectOf(fifo.value());

    SpawnOutcome r = pending<XpuPid>();
    auto spawnIt = [](XpuClient &c, ObjId o,
                      SpawnOutcome *out) -> Task<> {
        std::vector<CapGrant> capv{CapGrant{o, Perm::Write}};
        SpawnOutcome s = co_await c.xspawn(1, "worker", capv);
        *out = std::move(s);
    };
    sim.spawn(spawnIt(*cpuClient, obj, &r));
    sim.run();
    ASSERT_TRUE(r.ok()) << r.error().toString();
    // The child received exactly the capv permissions, visible on
    // every shim (immediate sync), and nothing else.
    EXPECT_TRUE(dpu1Shim->caps().check(r.value(), obj, Perm::Write));
    EXPECT_TRUE(cpuShim->caps().check(r.value(), obj, Perm::Write));
    EXPECT_FALSE(dpu1Shim->caps().check(r.value(), obj, Perm::Read));
}

TEST_F(ShimFixture, XspawnToUnknownPuFails)
{
    SpawnOutcome r = pending<XpuPid>();
    auto spawnIt = [](XpuClient &c, SpawnOutcome *out) -> Task<> {
        std::vector<CapGrant> capv;
        SpawnOutcome s = co_await c.xspawn(9, "nothing", capv);
        *out = std::move(s);
    };
    sim.spawn(spawnIt(*cpuClient, &r));
    sim.run();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), Errc::NotFound);
}

TEST_F(ShimFixture, SameUuidNamespaceAcrossPus)
{
    // A fifo initialized on the DPU is connectable from the CPU after
    // a grant: full symmetry of the nIPC path.
    FdOutcome fifo = pending<XpuFd>();
    sim.spawn(initFifo(*dpu1Client, "dpu-home", &fifo));
    sim.run();
    ASSERT_TRUE(fifo.ok());
    EXPECT_EQ(dpu1Shim->homedFifoCount(), 1u);

    core::Status st;
    const ObjId obj = dpu1Client->objectOf(fifo.value());
    sim.spawn(grantIt(*dpu1Client, cpuClient->xpuPid(), obj, Perm::Write,
                      &st));
    sim.run();

    NipcResult res;
    auto readIt = [](XpuClient &c, XpuFd fd, NipcResult *out) -> Task<> {
        ReadOutcome r = co_await c.xfifoRead(fd);
        if (r.ok())
            out->received = r.value();
    };
    sim.spawn(readIt(*dpu1Client, fifo.value(), &res));
    sim.spawn(nipcWriter(*cpuClient, "dpu-home", 128, &res, sim));
    sim.run();
    EXPECT_EQ(res.received.bytes, 128u);
}

} // namespace
