/** @file Integration tests for XPU-Shim: nIPC, capabilities, xSpawn. */

#include <gtest/gtest.h>

#include <memory>

#include "hw/computer.hh"
#include "xpu/client.hh"
#include "xpu/shim.hh"

namespace {

using molecule::hw::buildCpuDpuServer;
using molecule::hw::Computer;
using molecule::hw::DpuGeneration;
using molecule::os::LocalOs;
using molecule::os::Process;
using molecule::sim::Simulation;
using molecule::sim::SimTime;
using molecule::sim::Task;
using namespace molecule::sim::literals;
using namespace molecule::xpu;

/**
 * Host CPU + 2 BF-1 DPUs, one shim each, one process per PU with an
 * attached XPUcall client.
 */
struct ShimFixture : ::testing::Test
{
    Simulation sim;
    std::unique_ptr<Computer> computer =
        buildCpuDpuServer(sim, 2, DpuGeneration::Bf1);
    LocalOs cpuOs{computer->pu(0)};
    LocalOs dpu1Os{computer->pu(1)};
    LocalOs dpu2Os{computer->pu(2)};
    XpuShimNetwork net{*computer};
    XpuShim *cpuShim = net.addShim(cpuOs, TransportKind::Fifo);
    XpuShim *dpu1Shim = net.addShim(dpu1Os, TransportKind::MpscPoll);
    XpuShim *dpu2Shim = net.addShim(dpu2Os, TransportKind::MpscPoll);
    Process *cpuProc = nullptr;
    Process *dpu1Proc = nullptr;
    std::unique_ptr<XpuClient> cpuClient;
    std::unique_ptr<XpuClient> dpu1Client;

    void
    SetUp() override
    {
        auto boot = [](ShimFixture *f) -> Task<> {
            f->cpuProc = co_await f->cpuOs.spawnProcess("fn-cpu", 1 << 20);
            f->dpu1Proc =
                co_await f->dpu1Os.spawnProcess("fn-dpu", 1 << 20);
        };
        sim.spawn(boot(this));
        sim.run();
        ASSERT_NE(cpuProc, nullptr);
        ASSERT_NE(dpu1Proc, nullptr);
        cpuClient = std::make_unique<XpuClient>(*cpuShim, *cpuProc);
        dpu1Client = std::make_unique<XpuClient>(*dpu1Shim, *dpu1Proc);
    }
};

Task<>
initFifo(XpuClient &client, std::string uuid, FdResult *out)
{
    *out = co_await client.xfifoInit(uuid);
}

Task<>
connectFifo(XpuClient &client, std::string uuid, FdResult *out)
{
    *out = co_await client.xfifoConnect(uuid);
}

Task<>
grantIt(XpuClient &client, XpuPid target, ObjId obj, Perm perm,
        XpuStatus *out)
{
    *out = co_await client.grantCap(target, obj, perm);
}

TEST_F(ShimFixture, FifoInitRegistersEverywhere)
{
    FdResult r;
    sim.spawn(initFifo(*cpuClient, "self/cpu-fn", &r));
    sim.run();
    ASSERT_EQ(r.status, XpuStatus::Ok);
    EXPECT_GE(r.fd, 3);
    // Immediate sync: every shim can resolve the uuid locally.
    EXPECT_NE(cpuShim->caps().findByUuid("self/cpu-fn"), nullptr);
    EXPECT_NE(dpu1Shim->caps().findByUuid("self/cpu-fn"), nullptr);
    EXPECT_NE(dpu2Shim->caps().findByUuid("self/cpu-fn"), nullptr);
    EXPECT_EQ(cpuShim->homedFifoCount(), 1u);
    EXPECT_EQ(dpu1Shim->homedFifoCount(), 0u);
}

TEST_F(ShimFixture, DuplicateUuidIsRejected)
{
    FdResult a, b;
    sim.spawn(initFifo(*cpuClient, "dup", &a));
    sim.run();
    sim.spawn(initFifo(*dpu1Client, "dup", &b));
    sim.run();
    EXPECT_EQ(a.status, XpuStatus::Ok);
    EXPECT_EQ(b.status, XpuStatus::AlreadyExists);
}

TEST_F(ShimFixture, ConnectRequiresCapability)
{
    FdResult fifo;
    sim.spawn(initFifo(*cpuClient, "guarded", &fifo));
    sim.run();
    ASSERT_EQ(fifo.status, XpuStatus::Ok);

    // Unprivileged remote process cannot connect...
    FdResult denied;
    sim.spawn(connectFifo(*dpu1Client, "guarded", &denied));
    sim.run();
    EXPECT_EQ(denied.status, XpuStatus::NoPermission);

    // ...until the owner grants it write permission.
    XpuStatus st{};
    const ObjId obj = cpuClient->objectOf(fifo.fd);
    sim.spawn(grantIt(*cpuClient, dpu1Client->xpuPid(), obj, Perm::Write,
                      &st));
    sim.run();
    EXPECT_EQ(st, XpuStatus::Ok);

    FdResult ok;
    sim.spawn(connectFifo(*dpu1Client, "guarded", &ok));
    sim.run();
    EXPECT_EQ(ok.status, XpuStatus::Ok);
}

TEST_F(ShimFixture, GrantRequiresOwner)
{
    FdResult fifo;
    sim.spawn(initFifo(*cpuClient, "owned", &fifo));
    sim.run();
    const ObjId obj = cpuClient->objectOf(fifo.fd);

    // dpu1 has no owner bit: granting to itself must fail.
    XpuStatus st{};
    sim.spawn(grantIt(*dpu1Client, dpu1Client->xpuPid(), obj, Perm::Read,
                      &st));
    sim.run();
    EXPECT_EQ(st, XpuStatus::NoPermission);
}

TEST_F(ShimFixture, RevokedPermissionStopsConnects)
{
    FdResult fifo;
    sim.spawn(initFifo(*cpuClient, "revocable", &fifo));
    sim.run();
    const ObjId obj = cpuClient->objectOf(fifo.fd);
    XpuStatus st{};
    sim.spawn(grantIt(*cpuClient, dpu1Client->xpuPid(), obj, Perm::Read,
                      &st));
    sim.run();

    auto revokeIt = [](XpuClient &c, XpuPid t, ObjId o,
                       XpuStatus *out) -> Task<> {
        *out = co_await c.revokeCap(t, o, Perm::Read);
    };
    sim.spawn(revokeIt(*cpuClient, dpu1Client->xpuPid(), obj, &st));
    sim.run();
    EXPECT_EQ(st, XpuStatus::Ok);

    FdResult denied;
    sim.spawn(connectFifo(*dpu1Client, "revocable", &denied));
    sim.run();
    EXPECT_EQ(denied.status, XpuStatus::NoPermission);
}

struct NipcResult
{
    XpuStatus writeStatus = XpuStatus::Ok;
    SimTime writeLatency;
    molecule::os::FifoMessage received;
};

Task<>
nipcWriter(XpuClient &client, std::string uuid, std::uint64_t bytes,
           NipcResult *out, Simulation &sim)
{
    FdResult fd = co_await client.xfifoConnect(uuid);
    const SimTime start = sim.now();
    out->writeStatus = co_await client.xfifoWrite(fd.fd, bytes, "req");
    out->writeLatency = sim.now() - start;
}

Task<>
nipcReader(XpuClient &client, std::string uuid, NipcResult *out)
{
    FdResult fd = co_await client.xfifoInit(uuid);
    ReadResult r = co_await client.xfifoRead(fd.fd);
    out->received = r.msg;
}

TEST_F(ShimFixture, CrossPuWriteDeliversAndLandsInPaperBand)
{
    // DPU caller writes a CPU-homed fifo (the Fig 8 measurement).
    NipcResult res;
    sim.spawn(nipcReader(*cpuClient, "nipc", &res));
    sim.run();
    XpuStatus st{};
    const ObjId obj = cpuShim->caps().findByUuid("nipc")->id;
    sim.spawn(grantIt(*cpuClient, dpu1Client->xpuPid(), obj, Perm::Write,
                      &st));
    sim.run();
    sim.spawn(nipcWriter(*dpu1Client, "nipc", 64, &res, sim));
    sim.run();
    EXPECT_EQ(res.writeStatus, XpuStatus::Ok);
    EXPECT_EQ(res.received.bytes, 64u);
    EXPECT_EQ(res.received.tag, "req");
    // nIPC-Poll on BF-1: ~25 us (§6.1).
    EXPECT_GT(res.writeLatency.toMicroseconds(), 12.0);
    EXPECT_LT(res.writeLatency.toMicroseconds(), 45.0);
}

TEST_F(ShimFixture, TransportsOrderAsInFig8)
{
    // Base (FIFO) > MPSC > Poll on the same write path.
    auto measure = [&](TransportKind kind) {
        dpu1Shim->setTransport(kind);
        static int counter = 0;
        std::string uuid = "fig8-" + std::to_string(counter++);
        NipcResult res;
        sim.spawn(nipcReader(*cpuClient, uuid, &res));
        sim.run();
        XpuStatus st{};
        const ObjId obj = cpuShim->caps().findByUuid(uuid)->id;
        sim.spawn(grantIt(*cpuClient, dpu1Client->xpuPid(), obj,
                          Perm::Write, &st));
        sim.run();
        sim.spawn(nipcWriter(*dpu1Client, uuid, 512, &res, sim));
        sim.run();
        return res.writeLatency;
    };
    const auto base = measure(TransportKind::Fifo);
    const auto mpsc = measure(TransportKind::Mpsc);
    const auto poll = measure(TransportKind::MpscPoll);
    EXPECT_GT(base, mpsc);
    EXPECT_GT(mpsc, poll);
    // Fig 8: base lands in the ~100-250 us band on BF-1.
    EXPECT_GT(base.toMicroseconds(), 80.0);
    EXPECT_LT(base.toMicroseconds(), 260.0);
}

TEST_F(ShimFixture, WriteWithoutCapabilityIsDenied)
{
    NipcResult res;
    sim.spawn(nipcReader(*cpuClient, "locked", &res));
    sim.run();
    // No grant: the connect inside nipcWriter fails, then the write on
    // the invalid fd reports InvalidArgument.
    sim.spawn(nipcWriter(*dpu1Client, "locked", 64, &res, sim));
    sim.run();
    EXPECT_EQ(res.writeStatus, XpuStatus::InvalidArgument);
}

TEST_F(ShimFixture, CloseReclaimsLazily)
{
    FdResult fifo;
    sim.spawn(initFifo(*cpuClient, "transient", &fifo));
    sim.run();
    EXPECT_EQ(cpuShim->homedFifoCount(), 1u);

    auto closeIt = [](XpuClient &c, XpuFd fd, XpuStatus *out) -> Task<> {
        *out = co_await c.xfifoClose(fd);
    };
    XpuStatus st{};
    sim.spawn(closeIt(*cpuClient, fifo.fd, &st));
    sim.run();
    EXPECT_EQ(st, XpuStatus::Ok);
    // Backing queue reclaimed immediately on the home PU...
    EXPECT_EQ(cpuShim->homedFifoCount(), 0u);
    // ...but remote replicas are updated lazily (batched).
    EXPECT_NE(dpu1Shim->caps().findByUuid("transient"), nullptr);
    EXPECT_EQ(cpuShim->lazyQueueDepth(), 1u);

    auto flushIt = [](XpuShim *s) -> Task<> { co_await s->flushLazy(); };
    sim.spawn(flushIt(cpuShim));
    sim.run();
    EXPECT_EQ(dpu1Shim->caps().findByUuid("transient"), nullptr);
    EXPECT_EQ(cpuShim->lazyQueueDepth(), 0u);
}

TEST_F(ShimFixture, XspawnStartsProcessOnTargetPu)
{
    bool hookRan = false;
    Process *spawned = nullptr;
    net.registerProgram("executor",
                        [&](XpuShim &shim, Process &proc) {
                            hookRan = true;
                            spawned = &proc;
                            EXPECT_EQ(shim.puId(), 2);
                        });
    SpawnCallResult r;
    auto spawnIt = [](XpuClient &c, SpawnCallResult *out) -> Task<> {
        std::vector<CapGrant> capv;
        *out = co_await c.xspawn(2, "executor", capv);
    };
    sim.spawn(spawnIt(*cpuClient, &r));
    sim.run();
    ASSERT_EQ(r.status, XpuStatus::Ok);
    EXPECT_EQ(r.pid.pu, 2);
    EXPECT_TRUE(hookRan);
    ASSERT_NE(spawned, nullptr);
    EXPECT_EQ(spawned->name(), "executor");
    EXPECT_EQ(dpu2Os.findProcess(r.pid.local), spawned);
}

TEST_F(ShimFixture, XspawnGrantsCapvExplicitly)
{
    FdResult fifo;
    sim.spawn(initFifo(*cpuClient, "for-child", &fifo));
    sim.run();
    const ObjId obj = cpuClient->objectOf(fifo.fd);

    SpawnCallResult r;
    auto spawnIt = [](XpuClient &c, ObjId o,
                      SpawnCallResult *out) -> Task<> {
        std::vector<CapGrant> capv{CapGrant{o, Perm::Write}};
        *out = co_await c.xspawn(1, "worker", capv);
    };
    sim.spawn(spawnIt(*cpuClient, obj, &r));
    sim.run();
    ASSERT_EQ(r.status, XpuStatus::Ok);
    // The child received exactly the capv permissions, visible on
    // every shim (immediate sync), and nothing else.
    EXPECT_TRUE(dpu1Shim->caps().check(r.pid, obj, Perm::Write));
    EXPECT_TRUE(cpuShim->caps().check(r.pid, obj, Perm::Write));
    EXPECT_FALSE(dpu1Shim->caps().check(r.pid, obj, Perm::Read));
}

TEST_F(ShimFixture, XspawnToUnknownPuFails)
{
    SpawnCallResult r;
    auto spawnIt = [](XpuClient &c, SpawnCallResult *out) -> Task<> {
        std::vector<CapGrant> capv;
        *out = co_await c.xspawn(9, "nothing", capv);
    };
    sim.spawn(spawnIt(*cpuClient, &r));
    sim.run();
    EXPECT_EQ(r.status, XpuStatus::NotFound);
}

TEST_F(ShimFixture, SameUuidNamespaceAcrossPus)
{
    // A fifo initialized on the DPU is connectable from the CPU after
    // a grant: full symmetry of the nIPC path.
    FdResult fifo;
    sim.spawn(initFifo(*dpu1Client, "dpu-home", &fifo));
    sim.run();
    ASSERT_EQ(fifo.status, XpuStatus::Ok);
    EXPECT_EQ(dpu1Shim->homedFifoCount(), 1u);

    XpuStatus st{};
    const ObjId obj = dpu1Client->objectOf(fifo.fd);
    sim.spawn(grantIt(*dpu1Client, cpuClient->xpuPid(), obj, Perm::Write,
                      &st));
    sim.run();

    NipcResult res;
    auto readIt = [](XpuClient &c, XpuFd fd, NipcResult *out) -> Task<> {
        ReadResult r = co_await c.xfifoRead(fd);
        out->received = r.msg;
    };
    sim.spawn(readIt(*dpu1Client, fifo.fd, &res));
    sim.spawn(nipcWriter(*cpuClient, "dpu-home", 128, &res, sim));
    sim.run();
    EXPECT_EQ(res.received.bytes, 128u);
}

} // namespace
