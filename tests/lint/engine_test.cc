/**
 * @file
 * Unit tests for the molecule-lint engine (tools/lint/).
 *
 * The pack detectors themselves are covered by the built-in fixture
 * suites (`molecule-lint --self-test`, registered per pack as ctests)
 * and by the on-disk fixtures next to this file; these tests pin the
 * engine mechanics — dedupe, fingerprints, registry shape, suppression
 * — through the public runOnBuffers() entry point.
 */

#include <gtest/gtest.h>

#include "engine.hh"

namespace {

using namespace molecule::lint;

std::vector<Finding>
scan(const std::vector<std::pair<std::string, std::string>> &files,
     const std::set<std::string> &packs = {})
{
    const Registry registry = makeRegistry();
    return runOnBuffers(registry, packs, files);
}

TEST(LintEngine, RegistryHasFourPacksInCanonicalOrder)
{
    const Registry registry = makeRegistry();
    const std::vector<std::string> expected{"sim-purity", "lifetime",
                                            "error-discard", "layering"};
    EXPECT_EQ(registry.packs(), expected);
    EXPECT_GE(registry.rules().size(), 7u);
}

TEST(LintEngine, FingerprintIsStableAndDiscriminates)
{
    EXPECT_EQ(fingerprint("abc"), fingerprint("abc"));
    EXPECT_NE(fingerprint("abc"), fingerprint("abd"));
    EXPECT_NE(fingerprint(""), fingerprint("a"));
}

// PR 2's lint_determinism printed a transitive-hop finding once per
// discovery path; the engine keys findings structurally, so the same
// (path, line, rule, message) reports exactly once.
TEST(LintEngine, DedupesStructurallyIdenticalFindings)
{
    const auto findings =
        scan({{"src/core/router.cc",
               "struct R {\n"
               "    std::unordered_map<int, int> pending_;\n"
               "    void pump(sim::Simulation &sim) {\n"
               "        use(pending_.begin(), pending_.end());\n"
               "        sim.schedule(t, cb);\n"
               "    }\n"
               "};\n"}});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iteration");
    EXPECT_EQ(findings[0].line, 4u);
}

TEST(LintEngine, PackFilterRestrictsRules)
{
    const std::vector<std::pair<std::string, std::string>> files{
        {"src/sim/two.cc",
         "#include \"hw/pu.hh\"\n"
         "void f() { auto t = std::chrono::steady_clock::now(); }\n"}};
    const auto all = scan(files);
    EXPECT_EQ(all.size(), 2u); // wallclock + layering
    const auto onlyLayering = scan(files, {"layering"});
    ASSERT_EQ(onlyLayering.size(), 1u);
    EXPECT_EQ(onlyLayering[0].pack, "layering");
}

TEST(LintEngine, LintAllowSuppressesAnyRule)
{
    const auto findings =
        scan({{"src/sim/ok.cc",
               "// lint:allow(wallclock): fixture\n"
               "void f() { auto t = std::chrono::steady_clock::now(); "
               "}\n"}});
    EXPECT_TRUE(findings.empty());
}

TEST(LintEngine, LegacyDetAllowOnlyCoversSimPurity)
{
    // det:allow silences the migrated determinism rule...
    const auto purity =
        scan({{"src/sim/ok.cc",
               "// det:allow(wallclock): fixture\n"
               "void f() { auto t = std::chrono::steady_clock::now(); "
               "}\n"}});
    EXPECT_TRUE(purity.empty());
    // ...but not rules from the new packs.
    const auto layering =
        scan({{"src/sim/bad.hh",
               "// det:allow(layering): wrong tag\n"
               "#include \"hw/pu.hh\"\n"}});
    ASSERT_EQ(layering.size(), 1u);
    EXPECT_EQ(layering[0].rule, "layering");
}

TEST(LintEngine, FindingsAreSortedByPathThenLine)
{
    const auto findings = scan(
        {{"src/sim/b.cc",
          "void f() { auto t = std::chrono::steady_clock::now(); }\n"},
         {"src/sim/a.cc",
          "void g() {\n"
          "    auto t = std::chrono::steady_clock::now();\n"
          "}\n"}});
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].path, "src/sim/a.cc");
    EXPECT_EQ(findings[1].path, "src/sim/b.cc");
}

TEST(LintEngine, BuiltInSelfTestSuitesPass)
{
    EXPECT_EQ(selfTest(""), 0);
    EXPECT_NE(selfTest("no-such-pack"), 0);
}

} // namespace
