// Fixture: deliberate sim-purity violation (host clock in src/sim/).
#include <chrono>

void
tick()
{
    auto t = std::chrono::steady_clock::now();
    (void)t;
}
