// Fixture: determinism-clean model code (time from SimTime only).
void
tick(sim::Simulation &sim)
{
    const sim::SimTime now = sim.now();
    (void)now;
}
