// Fixture: a typed outcome dropped on the floor.
core::Status doThing(int x);

void
caller()
{
    doThing(1);
}
