// Fixture: every outcome consumed.
core::Status doThing(int x);

bool
caller()
{
    core::Status st = doThing(1);
    if (!st.ok())
        return false;
    return doThing(2).ok();
}
