// Fixture: the sanctioned copy-out-before-reset pattern (DESIGN.md
// §4d) — snapshot() copies the records out by value, so nothing
// borrowed from the buffer survives dropOldest().
void
drain(obs::SpanBuffer &buf)
{
    std::vector<obs::SpanRecord> copy = buf.snapshot();
    buf.dropOldest(16);
    exportAll(copy);
}
