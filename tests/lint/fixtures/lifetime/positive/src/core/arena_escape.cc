// Fixture: seeded arena-escape true positive — the pointer obtained
// from create<>() is dereferenced after the arena generation it
// belongs to was recycled by reset().
struct Req
{
    int id;
};

void
pump(sim::Arena &arena)
{
    Req *r = arena.create<Req>(7);
    use(r->id);
    arena.reset();
    use(r->id);
}
