// Fixture: the DES kernel (layer 0) reaching into hardware models
// (layer 2) — an upward include the wall must reject.
#include "hw/pu.hh"
