// Fixture: the control plane (layer 7) composing lower layers —
// downward includes are sanctioned.
#include "core/registry.hh"
#include "sandbox/runc.hh"
#include "sim/time.hh"
#include <vector>
