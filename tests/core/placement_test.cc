/**
 * @file
 * Unit tests for the placement-policy seam: the three shipped
 * strategies over synthetic PlacementViews, plus the DPU-saturation
 * spill regression on the real runtime (the pickPu-never-spills bug
 * the load-aware policy exists to fix).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/molecule.hh"
#include "hw/computer.hh"

namespace {

using namespace molecule;
using core::FunctionDef;
using core::LoadAwarePolicy;
using core::LocalityAffinityPolicy;
using core::Molecule;
using core::MoleculeOptions;
using core::PlacementConfig;
using core::PlacementRequest;
using core::PlacementView;
using core::PriceOrderedPolicy;
using core::PuView;
using hw::PuType;

/** A host (pu 0, 96 cores) + two DPUs (pu 1/2, 8 cores), DPU profile
 * cheaper — the canonical CPU+DPU server shape. */
std::vector<PuView>
cpuDpuViews()
{
    PuView host;
    host.pu = 0;
    host.kind = PuType::HostCpu;
    host.price = 1.0;
    host.profileRank = 1;
    host.cores = 96;
    host.freeBytes = 1 << 30;
    host.needBytes = 1 << 20;
    PuView dpu1 = host;
    dpu1.pu = 1;
    dpu1.kind = PuType::Dpu;
    dpu1.price = 0.3;
    dpu1.profileRank = 0;
    dpu1.cores = 8;
    PuView dpu2 = dpu1;
    dpu2.pu = 2;
    return {host, dpu1, dpu2};
}

PlacementRequest
anyRequest()
{
    static FunctionDef def;
    PlacementRequest req;
    req.fn = &def;
    return req;
}

TEST(PriceOrdered, CheapestKindLowestIdWins)
{
    PriceOrderedPolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(cpuDpuViews())), 1);
}

TEST(PriceOrdered, IgnoresLoadByDesign)
{
    // The golden-digest-compatible default never looks at outstanding
    // work: a drowning DPU still wins over an idle host.
    auto views = cpuDpuViews();
    views[1].outstanding = 1000;
    views[2].outstanding = 1000;
    PriceOrderedPolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 1);
}

TEST(PriceOrdered, SkipsIneligiblePus)
{
    auto views = cpuDpuViews();
    views[1].freeBytes = 0; // memory-full
    views[2].down = true;   // crashed
    PriceOrderedPolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 0);

    views[0].excluded = true;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), -1);
}

TEST(LoadAware, BalancesWithinTheCheapKind)
{
    auto views = cpuDpuViews();
    views[1].outstanding = 5;
    views[2].outstanding = 2;
    LoadAwarePolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 2);
}

TEST(LoadAware, SpillsToHostWhenDpusSaturate)
{
    auto views = cpuDpuViews();
    views[1].outstanding = 8; // 1.0 load/core at 8 cores
    views[2].outstanding = 8;
    LoadAwarePolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 0);
}

TEST(LoadAware, SpillThresholdIsConfigurable)
{
    auto views = cpuDpuViews();
    views[1].outstanding = 8;
    views[2].outstanding = 8;
    LoadAwarePolicy relaxed(LoadAwarePolicy::Options{2.0});
    EXPECT_EQ(relaxed.place(anyRequest(), PlacementView(views)), 1);
}

TEST(LoadAware, EveryKindSaturatedPicksGloballyLeastLoaded)
{
    auto views = cpuDpuViews();
    views[0].outstanding = 96; // 1.0 load/core
    views[1].outstanding = 16; // 2.0
    views[2].outstanding = 12; // 1.5
    LoadAwarePolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 0);
}

TEST(Locality, WarmSandboxesAttract)
{
    auto views = cpuDpuViews();
    views[0].warmSandboxes = 2; // host holds the function's state
    LocalityAffinityPolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 0);
}

TEST(Locality, MostWarmEntriesWinPriceBreaksTies)
{
    auto views = cpuDpuViews();
    views[0].warmSandboxes = 1;
    views[2].warmSandboxes = 3;
    LocalityAffinityPolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 2);

    views[0].warmSandboxes = 3; // tie on count: cheaper kind wins
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 2);
}

TEST(Locality, AffinityAbandonedPastLoadBarrier)
{
    auto views = cpuDpuViews();
    views[1].warmSandboxes = 4;
    views[1].outstanding = 16; // 2.0 load/core = default barrier
    LocalityAffinityPolicy p;
    // Falls back to load-aware: dpu2 is idle and cheapest.
    EXPECT_EQ(p.place(anyRequest(), PlacementView(views)), 2);
}

TEST(Locality, ColdStartFallsBackToLoadAware)
{
    LocalityAffinityPolicy p;
    EXPECT_EQ(p.place(anyRequest(), PlacementView(cpuDpuViews())), 1);
}

TEST(PlacementConfig, MakeBuildsTheSelectedPolicy)
{
    EXPECT_STREQ(PlacementConfig::priceOrdered().make()->name(),
                 "price-ordered");
    EXPECT_STREQ(PlacementConfig::loadAware().make()->name(),
                 "load-aware");
    EXPECT_STREQ(PlacementConfig::locality().make()->name(),
                 "locality");
    EXPECT_STREQ(core::toString(PlacementConfig::Kind::LoadAware),
                 "load-aware");
}

// ---------------------------------------------------------------------
// Regression: the pre-policy-layer scheduler never spilled off a
// saturated DPU (it only checked memory). Load-aware must move work
// to the host once DPU in-flight counts hit cores x threshold.
// ---------------------------------------------------------------------

struct SpillFixture : ::testing::Test
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer =
        hw::buildCpuDpuServer(sim, 2, hw::DpuGeneration::Bf1);

    std::unique_ptr<Molecule>
    makeRuntime(const PlacementConfig &placement)
    {
        MoleculeOptions options;
        options.placement = placement;
        auto rt = std::make_unique<Molecule>(*computer, options);
        rt->registerCpuFunction("helloworld",
                                {PuType::HostCpu, PuType::Dpu});
        rt->start();
        return rt;
    }

    void
    saturateDpus(Molecule &rt)
    {
        for (int pu = 1; pu <= 2; ++pu)
            for (int i = 0; i < computer->pu(pu).desc().cores; ++i)
                rt.scheduler().noteDispatch(pu);
    }
};

TEST_F(SpillFixture, LoadAwareSpillsSaturatedDpusToHost)
{
    auto rt = makeRuntime(PlacementConfig::loadAware());
    const auto &fn = rt->registry().find("helloworld");
    EXPECT_NE(rt->scheduler().place(fn), 0) << "idle DPUs must win";

    saturateDpus(*rt);
    EXPECT_EQ(rt->scheduler().place(fn), 0)
        << "saturated DPUs must spill to the host";

    // Draining one DPU slot pulls placement back to the cheap kind.
    rt->scheduler().noteComplete(1);
    EXPECT_EQ(rt->scheduler().place(fn), 1);
}

TEST_F(SpillFixture, PriceOrderedDocumentsTheOldCeiling)
{
    // The compatibility default keeps the historical behavior: no
    // spill, however deep the DPU backlog (goldens depend on it).
    auto rt = makeRuntime(PlacementConfig::priceOrdered());
    saturateDpus(*rt);
    const auto &fn = rt->registry().find("helloworld");
    EXPECT_EQ(rt->scheduler().place(fn), 1);
}

TEST_F(SpillFixture, ConcurrentBurstLandsOnHostAndDpu)
{
    // End to end: 80 simultaneous invocations against 2x16 DPU cores
    // — the in-flight accounting fed by the invoke pipeline itself
    // must push the overflow onto the host.
    auto rt = makeRuntime(PlacementConfig::loadAware());
    int hostRuns = 0, dpuRuns = 0;
    auto one = [](Molecule *m, int *host, int *dpu) -> sim::Task<> {
        auto rec = co_await m->invoke("helloworld", -1);
        EXPECT_TRUE(rec.ok());
        if (rec.ok())
            (rec.value().pu == 0 ? *host : *dpu) += 1;
    };
    for (int i = 0; i < 80; ++i)
        sim.spawn(one(rt.get(), &hostRuns, &dpuRuns));
    sim.run();
    EXPECT_EQ(hostRuns + dpuRuns, 80);
    EXPECT_GT(hostRuns, 0) << "overflow must spill to the host";
    EXPECT_GT(dpuRuns, 0) << "the cheap kind must still be used";
}

} // namespace
