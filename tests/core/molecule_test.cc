/** @file End-to-end tests for the Molecule runtime facade. */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "hw/computer.hh"

namespace {

using molecule::core::ChainSpec;
using molecule::core::DagCommMode;
using molecule::core::Molecule;
using molecule::core::MoleculeOptions;
using molecule::hw::buildCpuDpuServer;
using molecule::hw::buildF1Server;
using molecule::hw::Computer;
using molecule::hw::DpuGeneration;
using molecule::hw::PuType;
using molecule::sim::Simulation;
using molecule::workloads::Catalog;

struct MoleculeFixture : ::testing::Test
{
    Simulation sim;
    std::unique_ptr<Computer> computer =
        buildCpuDpuServer(sim, 2, DpuGeneration::Bf1);
    std::unique_ptr<Molecule> runtime;

    void
    makeRuntime(MoleculeOptions options)
    {
        runtime = std::make_unique<Molecule>(*computer, options);
        runtime->registerCpuFunction("helloworld",
                                     {PuType::HostCpu, PuType::Dpu});
        runtime->registerCpuFunction("image-resize",
                                     {PuType::HostCpu, PuType::Dpu});
        for (const auto &fn : Catalog::alexaChain())
            runtime->registerCpuFunction(fn,
                                         {PuType::HostCpu, PuType::Dpu});
        runtime->start();
    }
};

TEST_F(MoleculeFixture, ColdThenWarmInvocation)
{
    makeRuntime(MoleculeOptions{});
    auto cold = runtime->invokeSync("helloworld", 0).value();
    EXPECT_TRUE(cold.coldStart);
    // cfork on the host CPU: low double-digit milliseconds.
    EXPECT_GT(cold.startup.toMilliseconds(), 5.0);
    EXPECT_LT(cold.startup.toMilliseconds(), 25.0);

    auto warm = runtime->invokeSync("helloworld", 0).value();
    EXPECT_FALSE(warm.coldStart);
    EXPECT_LT(warm.startup.toMilliseconds(), 0.1);
    EXPECT_LT(warm.endToEnd, cold.endToEnd);
    EXPECT_EQ(runtime->startup().warmHits(), 1);
}

TEST_F(MoleculeFixture, HomoBaselineColdStartIsSlower)
{
    makeRuntime(MoleculeOptions::homo());
    auto cold = runtime->invokeSync("helloworld", 0).value();
    EXPECT_TRUE(cold.coldStart);
    // Full container + interpreter boot: >100 ms on the server CPU.
    EXPECT_GT(cold.startup.toMilliseconds(), 100.0);
}

TEST_F(MoleculeFixture, CforkIsRoughly10xOverBaseline)
{
    makeRuntime(MoleculeOptions{});
    auto mol = runtime->invokeSync("image-resize", 0).value();

    Simulation sim2;
    auto computer2 = buildCpuDpuServer(sim2, 2, DpuGeneration::Bf1);
    Molecule homo(*computer2, MoleculeOptions::homo());
    homo.registerCpuFunction("image-resize",
                             {PuType::HostCpu, PuType::Dpu});
    homo.start();
    auto base = homo.invokeSync("image-resize", 0).value();

    EXPECT_GT(base.startup.toMilliseconds() /
                  mol.startup.toMilliseconds(),
              8.0);
}

TEST_F(MoleculeFixture, RemoteStartAddsSmallNipcCost)
{
    makeRuntime(MoleculeOptions{});
    // Same function cold-started locally vs on the DPU: the remote
    // path adds the executor command round-trip (~1-3 ms at DPU
    // speed), on top of the DPU's slower cfork.
    auto local = runtime->invokeSync("helloworld", 0).value();
    auto remote = runtime->invokeSync("helloworld", 1).value();
    EXPECT_TRUE(remote.coldStart);
    EXPECT_GT(remote.startup, local.startup);
    // DPU cfork ~= 6.5x the CPU one + a few ms of command round-trip.
    EXPECT_LT(remote.startup.toMilliseconds(),
              local.startup.toMilliseconds() * 6.5 + 9.0);
}

TEST_F(MoleculeFixture, SchedulerPrefersCheaperDpu)
{
    makeRuntime(MoleculeOptions{});
    auto rec = runtime->invokeSync("helloworld").value();
    // DPU profiles are priced lower, so the scheduler picks a DPU.
    EXPECT_EQ(computer->pu(rec.pu).type(), PuType::Dpu);
}

TEST_F(MoleculeFixture, ChainRunsOnSinglePuByAffinity)
{
    makeRuntime(MoleculeOptions{});
    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    auto rec = runtime->invokeChainSync(spec).value();
    ASSERT_EQ(rec.invocations.size(), 5u);
    const int pu0 = rec.invocations[0].pu;
    for (const auto &inv : rec.invocations)
        EXPECT_EQ(inv.pu, pu0);
    EXPECT_EQ(rec.edgeLatencies.size(), 4u);
}

TEST_F(MoleculeFixture, IpcChainBeatsHttpChain)
{
    makeRuntime(MoleculeOptions{});
    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    std::vector<int> onCpu(5, 0);
    auto ipc = runtime->invokeChainSync(spec, onCpu).value();

    Simulation sim2;
    auto computer2 = buildCpuDpuServer(sim2, 2, DpuGeneration::Bf1);
    Molecule homo(*computer2, MoleculeOptions::homo());
    for (const auto &fn : Catalog::alexaChain())
        homo.registerCpuFunction(fn, {PuType::HostCpu});
    homo.start();
    auto http = homo.invokeChainSync(spec, onCpu).value();

    // Fig 14-e: 2.04-2.47x less end-to-end latency for Alexa.
    const double ratio = http.endToEnd.toMilliseconds() /
                         ipc.endToEnd.toMilliseconds();
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 2.9);
    // Fig 12-a: per-edge 15-18x faster with IPC on the same PU.
    for (std::size_t i = 0; i < 4; ++i) {
        const double edgeRatio =
            http.edgeLatencies[i].toMilliseconds() /
            ipc.edgeLatencies[i].toMilliseconds();
        EXPECT_GT(edgeRatio, 10.0);
        EXPECT_LT(edgeRatio, 25.0);
    }
}

TEST_F(MoleculeFixture, CrossPuChainUsesNipc)
{
    makeRuntime(MoleculeOptions{});
    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    // Alternate CPU/DPU so every edge crosses PUs (Fig 14-e CrossPU).
    std::vector<int> cross{0, 1, 0, 1, 0};
    auto rec = runtime->invokeChainSync(spec, cross).value();
    ASSERT_EQ(rec.edgeLatencies.size(), 4u);
    for (const auto &edge : rec.edgeLatencies) {
        // nIPC edges stay sub-millisecond (Fig 12-c/d Molecule bars).
        EXPECT_LT(edge.toMilliseconds(), 1.2);
        EXPECT_GT(edge.toMilliseconds(), 0.1);
    }
}

TEST_F(MoleculeFixture, KeepAliveCachesAndEvicts)
{
    MoleculeOptions options;
    options.startup.warmCapacity = 2;
    makeRuntime(options);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(runtime->invokeSync("helloworld", 0).ok());
    EXPECT_LE(runtime->startup().warmCount("helloworld", 0), 2u);
    EXPECT_EQ(runtime->startup().coldStarts(), 1);
}

TEST(MoleculeFpga, InvokeColdAndWarm)
{
    Simulation sim;
    auto computer = buildF1Server(sim, 1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerFpgaFunction("fpga-vmult");
    runtime.registerFpgaFunction("fpga-madd");
    runtime.start();

    auto cold = runtime.invokeFpgaSync("fpga-vmult", 0, 1).value();
    EXPECT_TRUE(cold.coldStart);
    // Cold FPGA start: program + sandbox prep, seconds.
    EXPECT_GT(cold.startup.toSeconds(), 1.0);

    auto warm = runtime.invokeFpgaSync("fpga-vmult", 0, 1).value();
    EXPECT_FALSE(warm.coldStart);
    EXPECT_LT(warm.startup.toMilliseconds(), 1.0);
    // Warm execution ~= kernel + invoke overheads.
    EXPECT_NEAR(warm.execution.toMicroseconds(), 1218.0 + 38.0, 30.0);
}

TEST(MoleculeFpga, HotSetKeepsSiblingsCached)
{
    Simulation sim;
    auto computer = buildF1Server(sim, 1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerFpgaFunction("fpga-vmult");
    runtime.registerFpgaFunction("fpga-madd");
    runtime.registerFpgaFunction("fpga-mscale");
    runtime.start();

    runtime.startup().setFpgaHotSet(
        0, {"fpga-vmult", "fpga-madd", "fpga-mscale"});
    auto first = runtime.invokeFpgaSync("fpga-vmult", 0, 1).value();
    EXPECT_TRUE(first.coldStart);
    // Siblings were packed into the same image: warm for them too.
    auto second = runtime.invokeFpgaSync("fpga-madd", 0, 1).value();
    EXPECT_FALSE(second.coldStart);
    auto third = runtime.invokeFpgaSync("fpga-mscale", 0, 1).value();
    EXPECT_FALSE(third.coldStart);
    EXPECT_EQ(computer->fpga(0).programCount(), 1);
}

} // namespace
