/**
 * @file
 * Unit tests for the keep-alive strategy seam: histogram idle-window
 * learning and eviction ordering, strategy configs, and the SLO-driven
 * warm-pool autoscaler (grow/shrink/clamp/digest).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/autoscaler.hh"
#include "core/molecule.hh"
#include "hw/computer.hh"

namespace {

using namespace molecule;
using namespace molecule::sim::literals;
using core::HistogramKeepAlive;
using core::KeepAliveConfig;
using core::Molecule;
using core::MoleculeOptions;
using core::WarmEntryView;
using core::WarmPoolAutoscaler;
using hw::PuType;
using sim::SimTime;

// ---------------------------------------------------------------------
// Histogram idle windows.
// ---------------------------------------------------------------------

TEST(HistogramKeepAlive, DefaultWindowUntilEnoughSamples)
{
    HistogramKeepAlive h;
    EXPECT_DOUBLE_EQ(h.window("fn", 0).toMilliseconds(), 250.0);

    // Three intervals (< minSamples = 4 observations of reuse).
    SimTime t;
    for (int i = 0; i < 4; ++i, t = t + 100_ms)
        h.onRequest("fn", 0, t);
    EXPECT_DOUBLE_EQ(h.window("fn", 0).toMilliseconds(), 250.0);
}

TEST(HistogramKeepAlive, LearnsTheReuseInterval)
{
    HistogramKeepAlive h;
    SimTime t;
    for (int i = 0; i < 8; ++i, t = t + 100_ms)
        h.onRequest("fn", 0, t);
    const double windowMs = h.window("fn", 0).toMilliseconds();
    // Log2 buckets + 1.25x margin: the 100 ms cadence must land the
    // window at or above the interval but well under the default for
    // such a tight pattern's neighborhood (one bucket + margin).
    EXPECT_GE(windowMs, 100.0);
    EXPECT_LE(windowMs, 400.0);
}

TEST(HistogramKeepAlive, WindowsAreLearnedPerFunctionAndPu)
{
    HistogramKeepAlive h;
    SimTime t;
    for (int i = 0; i < 8; ++i, t = t + 10_ms)
        h.onRequest("fast", 0, t);
    SimTime u;
    for (int i = 0; i < 8; ++i, u = u + 1000_ms)
        h.onRequest("slow", 1, u);
    EXPECT_LT(h.window("fast", 0), h.window("slow", 1));
    EXPECT_DOUBLE_EQ(h.window("fast", 1).toMilliseconds(), 250.0);
}

TEST(HistogramKeepAlive, OverdueEntriesEvictBeforeProtectedOnes)
{
    HistogramKeepAlive h;
    SimTime t;
    for (int i = 0; i < 8; ++i, t = t + 100_ms)
        h.onRequest("fn", 0, t);

    WarmEntryView fresh;
    fresh.fn = "fn";
    fresh.pu = 0;
    fresh.lastUsed = t;
    WarmEntryView overdue = fresh;
    overdue.lastUsed = t - 5000_ms; // far past the ~125-250 ms window

    const SimTime now = t + 50_ms;
    EXPECT_LT(h.score(overdue, now), h.score(fresh, now));
    // Protected entries keep LRU order among themselves.
    WarmEntryView older = fresh;
    older.lastUsed = t - 20_ms;
    EXPECT_LT(h.score(older, now), h.score(fresh, now));
    // The most overdue entry goes first.
    WarmEntryView ancient = overdue;
    ancient.lastUsed = t - 9000_ms;
    EXPECT_LT(h.score(ancient, now), h.score(overdue, now));
}

TEST(KeepAliveConfig, MakeBuildsTheSelectedStrategy)
{
    EXPECT_STREQ(KeepAliveConfig::lru().make()->name(), "lru");
    EXPECT_STREQ(KeepAliveConfig::greedyDual().make()->name(),
                 "greedy-dual");
    EXPECT_STREQ(KeepAliveConfig::histogram().make()->name(),
                 "histogram");
    HistogramKeepAlive::Options opts;
    opts.defaultWindowMs = 50.0;
    const KeepAliveConfig c = KeepAliveConfig::histogram(opts);
    EXPECT_EQ(c.kind, KeepAliveConfig::Kind::Histogram);
    EXPECT_DOUBLE_EQ(c.histogramOpts.defaultWindowMs, 50.0);
    EXPECT_STREQ(core::toString(KeepAliveConfig::Kind::Histogram),
                 "histogram");
}

// ---------------------------------------------------------------------
// Warm-pool autoscaler.
// ---------------------------------------------------------------------

struct AutoscalerFixture : ::testing::Test
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer =
        hw::buildCpuDpuServer(sim, 0, hw::DpuGeneration::Bf1);
    Molecule runtime{*computer, MoleculeOptions{}};

    obs::AlertEvent
    alert(bool fired, std::uint32_t tenant = 1)
    {
        obs::AlertEvent a;
        a.at = sim.now();
        a.tenant = tenant;
        a.fired = fired;
        return a;
    }
};

TEST_F(AutoscalerFixture, FiredAlertGrowsResolvedShrinks)
{
    WarmPoolAutoscaler scaler;
    scaler.addTarget(&runtime.startup());
    const std::size_t base = runtime.startup().options().warmCapacity;
    ASSERT_EQ(base, 64u);

    scaler.onAlert(alert(true));
    EXPECT_EQ(runtime.startup().options().warmCapacity, 128u);
    EXPECT_EQ(scaler.scaleUps(), 1);

    scaler.onAlert(alert(false));
    EXPECT_EQ(runtime.startup().options().warmCapacity, 64u);
    EXPECT_EQ(scaler.scaleDowns(), 1);
}

TEST_F(AutoscalerFixture, CapacityClampsToFloorAndCeiling)
{
    WarmPoolAutoscaler::Options opts;
    opts.minCapacity = 32;
    opts.maxCapacity = 256;
    WarmPoolAutoscaler scaler(opts);
    scaler.addTarget(&runtime.startup());

    for (int i = 0; i < 6; ++i)
        scaler.onAlert(alert(true));
    EXPECT_EQ(runtime.startup().options().warmCapacity, 256u);

    for (int i = 0; i < 10; ++i)
        scaler.onAlert(alert(false));
    EXPECT_EQ(runtime.startup().options().warmCapacity, 32u);
    EXPECT_EQ(scaler.scaleUps(), 6);
    EXPECT_EQ(scaler.scaleDowns(), 10);
}

TEST_F(AutoscalerFixture, DigestPinsTheScalingHistory)
{
    auto history = [this](const std::vector<bool> &fires) {
        Molecule rt(*computer, MoleculeOptions{});
        WarmPoolAutoscaler scaler;
        scaler.addTarget(&rt.startup());
        for (bool f : fires)
            scaler.onAlert(alert(f));
        return scaler.digest();
    };
    const std::vector<bool> seq{true, true, false, true, false};
    EXPECT_EQ(history(seq), history(seq));
    EXPECT_NE(history(seq), history({true, false, true, true, false}));
    EXPECT_NE(WarmPoolAutoscaler().digest(), history(seq));
}

TEST_F(AutoscalerFixture, DrivesEveryRegisteredTarget)
{
    Molecule other(*computer, MoleculeOptions{});
    WarmPoolAutoscaler scaler;
    scaler.addTarget(&runtime.startup());
    scaler.addTarget(&other.startup());
    scaler.onAlert(alert(true));
    EXPECT_EQ(runtime.startup().options().warmCapacity, 128u);
    EXPECT_EQ(other.startup().options().warmCapacity, 128u);
}

} // namespace
