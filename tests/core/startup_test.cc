/** @file Unit tests for the startup manager (keep-alive, GPU, hot sets). */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "workloads/catalog.hh"

namespace {

using namespace molecule;
using namespace molecule::sim::literals;
using core::KeepAliveConfig;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using workloads::Catalog;

TEST(Startup, GlobalBudgetEnforcedAcrossFunctions)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 0,
                                          hw::DpuGeneration::Bf1);
    MoleculeOptions options;
    options.startup.globalWarmCapacityPerPu = 3;
    Molecule runtime(*computer, options);
    for (const auto &fn :
         {"helloworld", "pyaes", "dd", "matmul", "linpack"})
        runtime.registerCpuFunction(fn, {PuType::HostCpu});
    runtime.start();

    std::size_t total = 0;
    for (const auto &fn :
         {"helloworld", "pyaes", "dd", "matmul", "linpack"}) {
        (void)runtime.invokeSync(fn, 0);
        total = 0;
        for (const auto &g :
             {"helloworld", "pyaes", "dd", "matmul", "linpack"})
            total += runtime.startup().warmCount(g, 0);
        EXPECT_LE(total, 3u);
    }
}

TEST(Startup, GreedyDualKeepsHighestColdCostDensity)
{
    // FaasCache priority is freq x cold-cost / size: helloworld's
    // cold boot is almost as expensive as pyaes' (interpreter-bound)
    // at a fraction of the memory, so greedy-dual retains it even
    // when pyaes ran more recently; LRU keeps whatever ran last.
    auto helloworldWarm = [](const KeepAliveConfig &keepAlive) {
        sim::Simulation sim;
        auto computer = hw::buildCpuDpuServer(sim, 0,
                                              hw::DpuGeneration::Bf1);
        MoleculeOptions options;
        options.startup.keepAlive = keepAlive;
        options.startup.globalWarmCapacityPerPu = 1;
        options.startup.useCfork = false; // bigger cost contrast
        Molecule runtime(*computer, options);
        runtime.registerCpuFunction("helloworld", {PuType::HostCpu});
        runtime.registerCpuFunction("pyaes", {PuType::HostCpu});
        runtime.start();
        for (int i = 0; i < 4; ++i) {
            (void)runtime.invokeSync("helloworld", 0);
            (void)runtime.invokeSync("pyaes", 0); // always most recent
        }
        return runtime.startup().warmCount("helloworld", 0);
    };
    EXPECT_EQ(helloworldWarm(KeepAliveConfig::greedyDual()), 1u);
    EXPECT_EQ(helloworldWarm(KeepAliveConfig::lru()), 0u);
}

TEST(Startup, DeprecatedEnumAdapterStillSelectsStrategies)
{
    // One-release migration shim: the old enum maps onto the new
    // strategy configs. Deliberately exercises deprecated API.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const KeepAliveConfig lru =
        core::keepAliveConfigFrom(core::KeepAlivePolicy::Lru);
    const KeepAliveConfig gd =
        core::keepAliveConfigFrom(core::KeepAlivePolicy::GreedyDual);
#pragma GCC diagnostic pop
    EXPECT_EQ(lru.kind, KeepAliveConfig::Kind::Lru);
    EXPECT_EQ(gd.kind, KeepAliveConfig::Kind::GreedyDual);
    EXPECT_STREQ(lru.make()->name(), "lru");
    EXPECT_STREQ(gd.make()->name(), "greedy-dual");
}

TEST(Startup, FpgaHotSetRecomposesOnMiss)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerFpgaFunction("fpga-gzip");
    runtime.registerFpgaFunction("fpga-aml");
    runtime.start();

    runtime.startup().setFpgaHotSet(0, {"fpga-gzip"});
    auto first = runtime.invokeFpgaSync("fpga-gzip", 0, 1024).value();
    EXPECT_TRUE(first.coldStart);
    EXPECT_EQ(computer->fpga(0).programCount(), 1);

    // A miss on fpga-aml recomposes: hot set + the missed function.
    auto second = runtime.invokeFpgaSync("fpga-aml", 0, 6000).value();
    EXPECT_TRUE(second.coldStart);
    EXPECT_EQ(computer->fpga(0).programCount(), 2);
    EXPECT_TRUE(runtime.deployment().runf(0).cached("fpga-gzip"));
    EXPECT_TRUE(runtime.deployment().runf(0).cached("fpga-aml"));
}

TEST(Startup, GpuPathColdAndWarm)
{
    sim::Simulation sim;
    auto computer = hw::buildFullHetero(sim);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerGpuFunction("gnn-train-step", 4_ms, 2 << 20);
    runtime.start();

    auto cold = runtime.invokeGpuSync("gnn-train-step", 0).value();
    EXPECT_TRUE(cold.coldStart);
    // Context creation + module load dominate the cold start.
    EXPECT_GT(cold.startup.toMilliseconds(), 200.0);
    EXPECT_GT(cold.execution.toMilliseconds(), 4.0);

    auto warm = runtime.invokeGpuSync("gnn-train-step", 0).value();
    EXPECT_FALSE(warm.coldStart);
    EXPECT_LT(warm.startup.toMilliseconds(), 0.1);
    // MPS keeps many modules resident: a second function does not
    // re-create the context.
    runtime.registerGpuFunction("gnn-agg", 1_ms);
    auto other = runtime.invokeGpuSync("gnn-agg", 0).value();
    EXPECT_TRUE(other.coldStart);
    EXPECT_LT(other.startup.toMilliseconds(), 50.0);
}

TEST(Startup, ShimHandlerThreadsRelieveBursts)
{
    // 8 concurrent xfifo_inits against the DPU shim: with one handler
    // thread they convoy; with four they overlap.
    auto burst = [](int threads) {
        sim::Simulation sim;
        auto computer = hw::buildCpuDpuServer(sim, 1,
                                              hw::DpuGeneration::Bf1);
        os::LocalOs cpuOs{computer->pu(0)};
        os::LocalOs dpuOs{computer->pu(1)};
        xpu::XpuShimNetwork net{*computer};
        net.addShim(cpuOs, xpu::TransportKind::Fifo);
        auto *dpuShim = net.addShim(dpuOs, xpu::TransportKind::MpscPoll);
        dpuShim->setHandlerThreads(threads);

        os::Process *proc = nullptr;
        auto boot = [](os::LocalOs *o, os::Process **p) -> sim::Task<> {
            *p = co_await o->spawnProcess("p", 1 << 20);
        };
        sim.spawn(boot(&dpuOs, &proc));
        sim.run();
        xpu::XpuClient client(*dpuShim, *proc);

        const auto t0 = sim.now();
        auto one = [](xpu::XpuClient *c, int i) -> sim::Task<> {
            (void)co_await c->xfifoInit("b" + std::to_string(i));
        };
        for (int i = 0; i < 8; ++i)
            sim.spawn(one(&client, i));
        sim.run();
        return sim.now() - t0;
    };
    const auto single = burst(1);
    const auto multi = burst(4);
    EXPECT_LT(multi, single);
}

} // namespace
