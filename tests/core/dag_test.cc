/** @file Unit tests for the DAG engine (fan-out, prewarm, entry edge). */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "workloads/catalog.hh"

namespace {

using namespace molecule;
using core::ChainNode;
using core::ChainSpec;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using workloads::Catalog;

struct DagFixture : ::testing::Test
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer =
        hw::buildCpuDpuServer(sim, 1, hw::DpuGeneration::Bf2);
    Molecule runtime{*computer, MoleculeOptions{}};

    void
    SetUp() override
    {
        for (const auto &fn : Catalog::alexaChain())
            runtime.registerCpuFunction(fn,
                                        {PuType::HostCpu, PuType::Dpu});
        runtime.start();
    }

    /** front -> interact -> smarthome -> {door, light}. */
    static ChainSpec
    alexaDag()
    {
        ChainSpec spec;
        spec.name = "alexa";
        auto fns = Catalog::alexaChain();
        spec.nodes = {ChainNode{fns[0], -1}, ChainNode{fns[1], 0},
                      ChainNode{fns[2], 1}, ChainNode{fns[3], 2},
                      ChainNode{fns[4], 2}};
        return spec;
    }
};

TEST_F(DagFixture, LinearFactoryBuildsParents)
{
    auto spec = ChainSpec::linear("x", {"a", "b", "c"});
    ASSERT_EQ(spec.nodes.size(), 3u);
    EXPECT_EQ(spec.nodes[0].parent, -1);
    EXPECT_EQ(spec.nodes[1].parent, 0);
    EXPECT_EQ(spec.nodes[2].parent, 1);
    EXPECT_EQ(spec.edgeCount(), 2u);
}

TEST_F(DagFixture, FanOutRunsLeavesConcurrently)
{
    // DAG e2e: the two leaves overlap, so the total is one leaf
    // shorter than the linear chain of the same five functions.
    auto dag = runtime.invokeChainSync(alexaDag(),
                                       std::vector<int>(5, 0)).value();
    auto linear = runtime.invokeChainSync(
        ChainSpec::linear("alexa-linear", Catalog::alexaChain()),
        std::vector<int>(5, 0)).value();
    const double execMs =
        runtime.catalog().cpu("alexa-front").execCost.toMilliseconds();
    EXPECT_NEAR(linear.endToEnd.toMilliseconds() -
                    dag.endToEnd.toMilliseconds(),
                execMs, 0.6);
}

TEST_F(DagFixture, PrewarmExcludesAcquisition)
{
    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    std::vector<int> onCpu(5, 0);
    auto prewarmed = runtime.invokeChainSync(spec, onCpu, true).value();
    // Not prewarmed: cold startup of five instances is inside e2e.
    sim::Simulation sim2;
    auto computer2 = hw::buildCpuDpuServer(sim2,
                                           1, hw::DpuGeneration::Bf2);
    Molecule cold(*computer2, MoleculeOptions{});
    for (const auto &fn : Catalog::alexaChain())
        cold.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    cold.start();
    auto coldRun = cold.invokeChainSync(spec, onCpu, false).value();
    EXPECT_GT(coldRun.endToEnd,
              prewarmed.endToEnd + sim::SimTime::fromMilliseconds(20));
}

TEST_F(DagFixture, EntryEdgeIsCharged)
{
    // A one-node "chain" still pays the gateway -> instance edge.
    auto spec = ChainSpec::linear("single", {"alexa-front"});
    std::vector<int> placement{0};
    auto rec = runtime.invokeChainSync(spec, placement).value();
    EXPECT_EQ(rec.edgeLatencies.size(), 0u);
    const double execMs =
        runtime.catalog().cpu("alexa-front").execCost.toMilliseconds();
    EXPECT_GT(rec.endToEnd.toMilliseconds(), execMs + 0.1);
}

TEST_F(DagFixture, RepeatedRunsReuseWarmInstances)
{
    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    std::vector<int> onCpu(5, 0);
    (void)runtime.invokeChainSync(spec, onCpu);
    const auto coldStartsAfterFirst = runtime.startup().coldStarts();
    (void)runtime.invokeChainSync(spec, onCpu);
    EXPECT_EQ(runtime.startup().coldStarts(), coldStartsAfterFirst);
}

TEST_F(DagFixture, InvocationRecordsCarryPlacement)
{
    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    std::vector<int> cross{0, 1, 0, 1, 0};
    auto rec = runtime.invokeChainSync(spec, cross).value();
    ASSERT_EQ(rec.invocations.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(rec.invocations[i].pu, cross[i]);
        EXPECT_EQ(rec.invocations[i].function,
                  Catalog::alexaChain()[i]);
    }
}

} // namespace
