/** @file Unit tests for placement (profiles, prices, chain affinity). */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "workloads/catalog.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::FunctionDef;
using core::Molecule;
using core::MoleculeOptions;
using core::Profile;
using hw::PuType;
using workloads::Catalog;

struct SchedFixture : ::testing::Test
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer =
        hw::buildCpuDpuServer(sim, 2, hw::DpuGeneration::Bf1);
    Molecule runtime{*computer, MoleculeOptions{}};

    void
    SetUp() override
    {
        runtime.registerCpuFunction("helloworld",
                                    {PuType::HostCpu, PuType::Dpu});
        runtime.registerCpuFunction("image-resize", {PuType::HostCpu});
        for (const auto &fn : Catalog::alexaChain())
            runtime.registerCpuFunction(fn, {PuType::Dpu});
        runtime.start();
    }
};

TEST_F(SchedFixture, PrefersCheapestAllowedKind)
{
    const auto &both = runtime.registry().find("helloworld");
    const int pu = runtime.scheduler().place(both);
    EXPECT_EQ(computer->pu(pu).type(), PuType::Dpu);

    const auto &cpuOnly = runtime.registry().find("image-resize");
    EXPECT_EQ(runtime.scheduler().place(cpuOnly), 0);
}

TEST_F(SchedFixture, FallsBackWhenCheapKindIsFull)
{
    // Exhaust both DPUs' memory: the scheduler must fall back to CPU.
    computer->pu(1).tryAllocate(computer->pu(1).memoryFree());
    computer->pu(2).tryAllocate(computer->pu(2).memoryFree());
    const auto &both = runtime.registry().find("helloworld");
    EXPECT_EQ(runtime.scheduler().place(both), 0);
}

TEST_F(SchedFixture, ReturnsMinusOneWhenNothingFits)
{
    for (int pu = 0; pu < computer->puCount(); ++pu)
        computer->pu(pu).tryAllocate(computer->pu(pu).memoryFree());
    const auto &both = runtime.registry().find("helloworld");
    EXPECT_EQ(runtime.scheduler().place(both), -1);
}

TEST_F(SchedFixture, ChainAffinityPicksOnePu)
{
    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    auto placement = runtime.scheduler().placeChain(spec);
    ASSERT_EQ(placement.size(), 5u);
    // All Alexa functions only allow DPUs: a single DPU hosts all.
    for (int pu : placement) {
        EXPECT_EQ(pu, placement[0]);
        EXPECT_EQ(computer->pu(pu).type(), PuType::Dpu);
    }
}

TEST_F(SchedFixture, MixedChainFallsBackPerNode)
{
    // image-resize (CPU-only) + alexa-front (DPU-only): no single PU
    // fits, so per-node placement applies.
    auto spec = ChainSpec::linear(
        "mixed", {"image-resize", "alexa-front"});
    auto placement = runtime.scheduler().placeChain(spec);
    ASSERT_EQ(placement.size(), 2u);
    EXPECT_EQ(computer->pu(placement[0]).type(), PuType::HostCpu);
    EXPECT_EQ(computer->pu(placement[1]).type(), PuType::Dpu);
}

TEST(FunctionDefTest, AllowsChecksProfiles)
{
    FunctionDef def;
    def.name = "x";
    def.profiles.push_back(Profile{PuType::Dpu, 0.5});
    EXPECT_TRUE(def.allows(PuType::Dpu));
    EXPECT_FALSE(def.allows(PuType::HostCpu));
    EXPECT_FALSE(def.allows(PuType::FpgaHost));
}

TEST(FunctionRegistryTest, AddFindHas)
{
    core::FunctionRegistry reg;
    FunctionDef def;
    def.name = "fn";
    reg.add(def);
    EXPECT_TRUE(reg.has("fn"));
    EXPECT_FALSE(reg.has("nope"));
    EXPECT_EQ(reg.find("fn").name, "fn");
    EXPECT_EQ(reg.size(), 1u);
    // Re-registering replaces.
    def.profiles.push_back(Profile{PuType::Dpu, 0.5});
    reg.add(def);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.find("fn").profiles.size(), 1u);
}

} // namespace
