/** @file Unit tests for deployment wiring and computer builders. */

#include <gtest/gtest.h>

#include <memory>

#include "core/deployment.hh"
#include "hw/computer.hh"

namespace {

using namespace molecule;
using core::Deployment;
using hw::PuType;
using xpu::TransportKind;

TEST(Deployment, WiresOneStackPerPu)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    Deployment dep(*computer);
    EXPECT_EQ(dep.generalPus().size(), 3u);
    for (int pu : dep.generalPus()) {
        EXPECT_EQ(&dep.osOn(pu).pu(), &computer->pu(pu));
        EXPECT_EQ(&dep.runcOn(pu).localOs(), &dep.osOn(pu));
        EXPECT_TRUE(dep.shimNet().hasShim(pu));
    }
}

TEST(Deployment, TransportsFollowPaperDefaults)
{
    // §6.1: XPUcall optimizations applied on DPUs, not on the CPU.
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 1,
                                          hw::DpuGeneration::Bf1);
    Deployment dep(*computer);
    EXPECT_EQ(dep.shimOn(0).transport().kind(), TransportKind::Fifo);
    EXPECT_EQ(dep.shimOn(1).transport().kind(),
              TransportKind::MpscPoll);
}

TEST(Deployment, AcceleratorsGetVirtualShimRuntimes)
{
    sim::Simulation sim;
    auto computer = hw::buildFullHetero(sim);
    Deployment dep(*computer);
    ASSERT_EQ(dep.runfCount(), 1u);
    ASSERT_EQ(dep.rungCount(), 1u);
    // runf/runG are hosted by the accelerator's host PU's OS.
    EXPECT_EQ(&dep.runf(0).device(), computer->fpgas()[0].get());
    EXPECT_EQ(dep.runf(0).device().hostPuId(), 0);
    EXPECT_EQ(&dep.rung(0).device(), computer->gpus()[0].get());
}

TEST(Deployment, PusOfTypeFiltersCorrectly)
{
    sim::Simulation sim;
    auto computer = hw::buildFullHetero(sim);
    Deployment dep(*computer);
    EXPECT_EQ(dep.pusOfType(PuType::HostCpu).size(), 1u);
    EXPECT_EQ(dep.pusOfType(PuType::Dpu).size(), 2u);
    EXPECT_TRUE(dep.pusOfType(PuType::FpgaHost).empty());
}

TEST(Builders, F1ServerHasEightFpgas)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 8);
    EXPECT_EQ(computer->fpgas().size(), 8u);
    EXPECT_EQ(computer->puCount(), 1);
    for (const auto &fpga : computer->fpgas()) {
        EXPECT_EQ(fpga->totals().luts,
                  hw::FpgaResources::f1Totals().luts);
        EXPECT_EQ(fpga->hostPuId(), 0);
    }
}

TEST(Builders, FullHeteroHasEveryPuKind)
{
    sim::Simulation sim;
    auto computer = hw::buildFullHetero(sim);
    EXPECT_EQ(computer->puCount(), 3);
    EXPECT_EQ(computer->hostCpu().id(), 0);
    EXPECT_EQ(computer->fpgas().size(), 1u);
    EXPECT_EQ(computer->gpus().size(), 1u);
    // Cross-PU routes exist between every general-purpose pair.
    for (int a = 0; a < 3; ++a)
        for (int b = 0; b < 3; ++b)
            EXPECT_TRUE(computer->topology().hasRoute(a, b));
}

} // namespace
