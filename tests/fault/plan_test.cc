/** @file Unit tests for InjectionPlan: builders, scatter, round-trip. */

#include <gtest/gtest.h>

#include "fault/plan.hh"

namespace {

using namespace molecule;
using fault::FaultKind;
using fault::FaultSpec;
using fault::InjectionPlan;
using sim::SimTime;

TEST(Plan, BuildersFillSpecs)
{
    InjectionPlan plan(9);
    plan.crashPu(2, SimTime::milliseconds(10), SimTime::milliseconds(5))
        .degradeLink(0, 1, SimTime::milliseconds(3),
                     SimTime::milliseconds(1), SimTime::milliseconds(8),
                     4.0)
        .failFpgaReconfig(1, SimTime::milliseconds(2), 3)
        .oomKill(1, "image-resize", SimTime::milliseconds(7));

    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.seed(), 9u);

    const auto &s = plan.specs();
    EXPECT_EQ(s[0].kind, FaultKind::PuCrash);
    EXPECT_EQ(s[0].pu, 2);
    EXPECT_EQ(s[0].duration, SimTime::milliseconds(5));

    EXPECT_EQ(s[1].kind, FaultKind::LinkDegrade);
    EXPECT_EQ(s[1].pu, 0);
    EXPECT_EQ(s[1].peer, 1);
    EXPECT_EQ(s[1].blackout, SimTime::milliseconds(1));
    EXPECT_EQ(s[1].duration, SimTime::milliseconds(8));
    EXPECT_DOUBLE_EQ(s[1].factor, 4.0);

    EXPECT_EQ(s[2].kind, FaultKind::FpgaReconfigFail);
    EXPECT_EQ(s[2].count, 3);

    EXPECT_EQ(s[3].kind, FaultKind::SandboxOom);
    EXPECT_EQ(s[3].target, "image-resize");
}

TEST(Plan, ScatterIsPureFunctionOfItsArguments)
{
    InjectionPlan::ScatterMix mix;
    mix.fpgaReconfig = true;
    mix.sandboxOom = true;
    mix.oomFunction = "helloworld";

    const auto a = InjectionPlan::scatter(11, 4, SimTime::seconds(1),
                                          16, mix);
    const auto b = InjectionPlan::scatter(11, 4, SimTime::seconds(1),
                                          16, mix);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 16u);

    const auto c = InjectionPlan::scatter(12, 4, SimTime::seconds(1),
                                          16, mix);
    EXPECT_NE(a, c);
}

TEST(Plan, ScatterNeverCrashesTheManagerPu)
{
    InjectionPlan::ScatterMix mix;
    mix.linkDegrade = false;
    const auto plan =
        InjectionPlan::scatter(3, 4, SimTime::seconds(1), 64, mix);
    for (const auto &spec : plan.specs()) {
        ASSERT_EQ(spec.kind, FaultKind::PuCrash);
        EXPECT_NE(spec.pu, 0);
        EXPECT_LT(spec.at, SimTime::seconds(1));
        EXPECT_GE(spec.at, SimTime(0));
    }
}

TEST(Plan, ScatterWithNothingEnabledIsEmpty)
{
    InjectionPlan::ScatterMix mix;
    mix.puCrash = false;
    mix.linkDegrade = false;
    const auto plan =
        InjectionPlan::scatter(3, 4, SimTime::seconds(1), 8, mix);
    EXPECT_TRUE(plan.empty());
}

TEST(Plan, SerializeParseRoundTrip)
{
    InjectionPlan plan(1234);
    plan.crashPu(1, SimTime::milliseconds(10), SimTime::milliseconds(5))
        .degradeLink(0, 2, SimTime::microseconds(2500), SimTime(777),
                     SimTime::milliseconds(8), 3.1400001)
        .failFpgaReconfig(2, SimTime::milliseconds(4), 2)
        .oomKill(1, "pyaes", SimTime::milliseconds(6));

    const auto parsed = InjectionPlan::parse(plan.serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
    EXPECT_EQ(parsed.value(), plan);
}

TEST(Plan, ScatteredPlanRoundTripsExactly)
{
    InjectionPlan::ScatterMix mix;
    mix.fpgaReconfig = true;
    const auto plan =
        InjectionPlan::scatter(77, 3, SimTime::seconds(2), 32, mix);
    // Factors are printed with %.17g, so even irrational-looking
    // doubles survive the text round trip bit-exactly.
    const auto parsed = InjectionPlan::parse(plan.serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), plan);
}

TEST(Plan, ParseRejectsGarbageWithTypedErrors)
{
    for (const char *bad :
         {"", "not a plan", "injection-plan v1 seed=1\nbogus line",
          "injection-plan v1 seed=1\nfault kind=warp-core-breach",
          "injection-plan v1 seed=1\nfault kind=pu-crash nonsense"}) {
        auto parsed = InjectionPlan::parse(bad);
        ASSERT_FALSE(parsed.ok()) << "accepted: " << bad;
        EXPECT_EQ(parsed.error().code(), core::Errc::InvalidArgument);
    }
}

TEST(Plan, EmptyPlanRoundTripsAndStaysEmpty)
{
    InjectionPlan plan(5);
    EXPECT_TRUE(plan.empty());
    const auto parsed = InjectionPlan::parse(plan.serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().empty());
    EXPECT_EQ(parsed.value().seed(), 5u);
}

} // namespace
