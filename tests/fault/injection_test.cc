/**
 * @file
 * Injector + recovery integration: faults fire at plan instants, the
 * runtime reacts (typed errors, retries, failover, purge + re-warm),
 * and an empty plan leaves the simulation untouched.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/molecule.hh"
#include "fault/injector.hh"
#include "hw/computer.hh"

namespace {

using namespace molecule;
using core::Errc;
using core::InvokeOptions;
using core::Molecule;
using core::MoleculeOptions;
using fault::FaultState;
using fault::InjectionPlan;
using hw::PuType;
using sim::SimTime;

/** CPU + 2 DPU runtime with a fault state attached. */
struct FaultFixture : ::testing::Test
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer =
        hw::buildCpuDpuServer(sim, 2, hw::DpuGeneration::Bf1);
    FaultState faults;
    std::unique_ptr<Molecule> runtime;

    void
    SetUp() override
    {
        MoleculeOptions opts;
        opts.faults = &faults;
        runtime = std::make_unique<Molecule>(*computer, opts);
        runtime->registerCpuFunction("helloworld",
                                     {PuType::HostCpu, PuType::Dpu});
        runtime->start();
    }
};

TEST_F(FaultFixture, ExplicitPlacementOnDownPuFailsTyped)
{
    faults.crashPu(1);
    InvokeOptions opts;
    opts.pu = 1;
    auto out = runtime->invokeSync("helloworld", opts);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.error().code(), Errc::PuCrashed);
    EXPECT_EQ(out.error().pu(), 1);
}

TEST_F(FaultFixture, FailoverMovesTheRetryToALivePu)
{
    faults.crashPu(1);
    InvokeOptions opts;
    opts.pu = 1;
    opts.maxAttempts = 3;
    auto out = runtime->invokeSync("helloworld", opts);
    ASSERT_TRUE(out.ok()) << out.error().toString();
    EXPECT_NE(out.value().pu, 1);
    EXPECT_TRUE(out.value().failedOver);
    ASSERT_FALSE(out.value().pusTried.empty());
    EXPECT_EQ(out.value().pusTried.front(), 1);
}

TEST_F(FaultFixture, RetriesExhaustedCarriesTheCauseChain)
{
    faults.crashPu(1);
    InvokeOptions opts;
    opts.pu = 1;
    opts.maxAttempts = 3;
    opts.failover = false; // pinned placement: every attempt fails
    auto out = runtime->invokeSync("helloworld", opts);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.error().code(), Errc::RetriesExhausted);
    EXPECT_EQ(out.error().retries(), 2);
    ASSERT_FALSE(out.error().causes().empty());
    EXPECT_EQ(out.error().causes().front().code, Errc::PuCrashed);
    EXPECT_EQ(out.error().pusTried(), std::vector<int>{1});
}

TEST_F(FaultFixture, PlannedCrashIsPurgedAndRecovered)
{
    // Warm an instance on the DPU, then crash it under a plan.
    ASSERT_TRUE(runtime->invokeSync("helloworld", 1).ok());
    EXPECT_GE(runtime->startup().warmCount("helloworld", 1), 1u);

    fault::Injector injector(sim, faults, nullptr);
    InjectionPlan plan;
    plan.crashPu(1, sim.now() + SimTime::milliseconds(1),
                 SimTime::milliseconds(5));
    injector.arm(plan);
    sim.run();

    EXPECT_EQ(injector.firedCount(), 1);
    ASSERT_NE(runtime->recovery(), nullptr);
    EXPECT_EQ(runtime->recovery()->crashesHandled(), 1);
    EXPECT_EQ(runtime->recovery()->restartsHandled(), 1);
    EXPECT_EQ(faults.puEpoch(1), 1u);
    EXPECT_TRUE(faults.puUp(1));
    // The crash killed the warm pool; the PU still serves (cold).
    EXPECT_EQ(runtime->startup().warmCount("helloworld", 1), 0u);
    auto again = runtime->invokeSync("helloworld", 1);
    ASSERT_TRUE(again.ok()) << again.error().toString();
    EXPECT_TRUE(again.value().coldStart);
}

TEST_F(FaultFixture, MidFlightCrashRetriesToCompletion)
{
    // Crash lands while the cold start is in flight; the attempt
    // fails typed, the retry waits out the downtime and succeeds.
    fault::Injector injector(sim, faults, nullptr);
    InjectionPlan plan;
    plan.crashPu(1, sim.now() + SimTime::milliseconds(2),
                 SimTime::milliseconds(3));
    injector.arm(plan);

    InvokeOptions opts;
    opts.pu = 1;
    opts.maxAttempts = 4;
    opts.failover = false;
    auto out = runtime->invokeSync("helloworld", opts);
    ASSERT_TRUE(out.ok()) << out.error().toString();
    EXPECT_EQ(out.value().pu, 1);
}

TEST_F(FaultFixture, LinkBlackoutStallsRemoteInvocations)
{
    ASSERT_TRUE(runtime->invokeSync("helloworld", 1).ok()); // warm it
    const auto warm = runtime->invokeSync("helloworld", 1);
    ASSERT_TRUE(warm.ok());

    fault::LinkFault lf;
    lf.downUntil = sim.now() + SimTime::milliseconds(20);
    lf.degradedUntil = sim.now() + SimTime::milliseconds(20);
    lf.factor = 1.0;
    faults.setLinkFault(0, 1, lf);

    const auto stalled = runtime->invokeSync("helloworld", 1);
    ASSERT_TRUE(stalled.ok());
    // The gateway->DPU transfer waited out most of the blackout.
    EXPECT_GT(stalled.value().endToEnd,
              warm.value().endToEnd + SimTime::milliseconds(10));
}

TEST(FaultInjection, FpgaReconfigFailureIsTypedAndRetryable)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    FaultState faults;
    MoleculeOptions opts;
    opts.faults = &faults;
    Molecule runtime(*computer, opts);
    runtime.registerFpgaFunction("fpga-gzip");
    runtime.start();

    const int hostPu = computer->fpga(0).hostPuId();
    faults.armFpgaReconfigFailure(hostPu, 1);
    auto failed = runtime.invokeFpgaSync("fpga-gzip", 0, 1024);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code(), Errc::FpgaReconfigFailed);

    // One armed failure: the next programming attempt succeeds.
    faults.armFpgaReconfigFailure(hostPu, 1);
    InvokeOptions retry;
    retry.maxAttempts = 2;
    auto ok = runtime.invokeFpgaSync("fpga-gzip", 0, 1024, retry);
    ASSERT_TRUE(ok.ok()) << ok.error().toString();
}

TEST_F(FaultFixture, OomKillEvictsTheWarmPool)
{
    ASSERT_TRUE(runtime->invokeSync("helloworld", 0).ok());
    EXPECT_GE(runtime->startup().warmCount("helloworld", 0), 1u);

    faults.oomKill(0, "helloworld");
    EXPECT_EQ(runtime->startup().warmCount("helloworld", 0), 0u);

    auto again = runtime->invokeSync("helloworld", 0);
    ASSERT_TRUE(again.ok()) << again.error().toString();
    EXPECT_TRUE(again.value().coldStart);
}

#if MOLECULE_TRACING
TEST_F(FaultFixture, InjectorEmitsSpansAndCounters)
{
    obs::Tracer tracer(sim);
    fault::Injector injector(sim, faults, &tracer);
    InjectionPlan plan;
    plan.crashPu(1, sim.now(), SimTime::milliseconds(2));
    plan.oomKill(0, "helloworld", sim.now() + SimTime::milliseconds(1));
    injector.arm(plan);
    sim.run();

    EXPECT_EQ(injector.firedCount(), 2);
    EXPECT_EQ(tracer.metrics().counter("fault.injected").value(), 2);
    EXPECT_EQ(tracer.metrics().counter("fault.pu-crash").value(), 1);
    EXPECT_EQ(tracer.metrics().counter("fault.sandbox-oom").value(), 1);
    EXPECT_EQ(tracer.metrics().counter("fault.pu_restart").value(), 1);
}
#endif // MOLECULE_TRACING

TEST_F(FaultFixture, EmptyPlanSchedulesNothing)
{
    fault::Injector injector(sim, faults, nullptr);
    injector.arm(InjectionPlan{});
    const auto before = sim.now();
    sim.run();
    EXPECT_EQ(sim.now(), before);
    EXPECT_EQ(injector.firedCount(), 0);
    EXPECT_FALSE(faults.anyArmed());
}

} // namespace
