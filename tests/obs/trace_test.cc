/**
 * @file
 * Span/Tracer lifecycle tests (obs/trace.hh).
 *
 * Pins the causal-tracing contract: root spans open traces with
 * deterministic ids, children parent via explicit SpanContext,
 * finish() is idempotent, inert contexts make every operation a
 * no-op, timestamps are sim time, and the ring bound drops oldest
 * records while counting the loss. The whole file also compiles with
 * MOLECULE_TRACING=0, where only the inert-surface tests run.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace {

using namespace molecule;

// The inert surface must exist and be harmless in BOTH build modes:
// this is the API shape every call site relies on when no tracer is
// attached (or when tracing is compiled out).
TEST(SpanInert, DefaultContextIsNoOp)
{
    obs::SpanContext ctx;
    EXPECT_FALSE(ctx.active());
    EXPECT_EQ(ctx.trace, 0u);

    obs::Span span(ctx, "orphan", obs::Layer::Core, 3);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.traceId(), 0u);
    span.setPu(5);
    span.setArg(123);
    span.setDetail("ignored");
    span.finish();
    span.finish();

    // Children of an inert span are inert too: inertness propagates
    // down whole call trees from a single null root.
    obs::Span child(span.ctx(), "child", obs::Layer::Os);
    EXPECT_FALSE(child.active());
}

TEST(SpanInert, NullTracerRootIsNoOp)
{
    obs::Span span = obs::Span::root(nullptr, "invoke", obs::Layer::Core);
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(span.ctx().active());
}

#if MOLECULE_TRACING

TEST(Span, RootOpensTraceAndRecords)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    {
        obs::Span span =
            obs::Span::root(&tracer, "invoke", obs::Layer::Core, 2);
        EXPECT_TRUE(span.active());
        EXPECT_NE(span.traceId(), 0u);
        span.setArg(7);
        span.setDetail("helloworld");
    }
    ASSERT_EQ(tracer.records().size(), 1u);
    const obs::SpanRecord &rec = tracer.records().front();
    EXPECT_STREQ(rec.name, "invoke");
    EXPECT_EQ(rec.layer, obs::Layer::Core);
    EXPECT_EQ(rec.parentId, 0u);
    EXPECT_EQ(rec.pu, 2);
    EXPECT_EQ(rec.arg, 7);
    EXPECT_STREQ(rec.detail, "helloworld");
}

TEST(Span, ChildParentsOnContext)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    obs::Span root = obs::Span::root(&tracer, "invoke", obs::Layer::Core);
    {
        obs::Span child(root.ctx(), "startup", obs::Layer::Sandbox, 1);
        EXPECT_TRUE(child.active());
        EXPECT_EQ(child.traceId(), root.traceId());
        EXPECT_NE(child.spanId(), root.spanId());
    }
    root.finish();

    // Children finish (and are pushed) before their parents.
    ASSERT_EQ(tracer.records().size(), 2u);
    const obs::SpanRecord &child = tracer.records()[0];
    const obs::SpanRecord &parent = tracer.records()[1];
    EXPECT_STREQ(child.name, "startup");
    EXPECT_EQ(child.parentId, parent.spanId);
    EXPECT_EQ(child.traceId, parent.traceId);
}

TEST(Span, FinishIsIdempotent)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    obs::Span span = obs::Span::root(&tracer, "invoke", obs::Layer::Core);
    span.finish();
    span.finish();
    EXPECT_FALSE(span.active());
    // Destructor runs after the explicit finish: still one record.
    EXPECT_EQ(tracer.records().size(), 1u);
    // A finished span hands out inert contexts, so late children of a
    // closed phase silently vanish instead of mis-parenting.
    EXPECT_FALSE(span.ctx().active());
}

TEST(Span, DetailTruncatesToBuffer)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    const std::string longName(64, 'x');
    {
        obs::Span span =
            obs::Span::root(&tracer, "invoke", obs::Layer::Core);
        span.setDetail(longName.c_str());
    }
    const obs::SpanRecord &rec = tracer.records().front();
    EXPECT_EQ(std::strlen(rec.detail),
              sizeof(rec.detail) - 1); // NUL-terminated truncation
    EXPECT_EQ(std::string(rec.detail), longName.substr(0, 23));
}

sim::Task<>
timedPhases(sim::Simulation &sim, obs::Tracer &tracer)
{
    obs::Span root = obs::Span::root(&tracer, "invoke", obs::Layer::Core);
    {
        obs::Span a(root.ctx(), "startup", obs::Layer::Sandbox);
        co_await sim.delay(sim::SimTime::microseconds(30));
    }
    {
        obs::Span b(root.ctx(), "comm", obs::Layer::Core);
        co_await sim.delay(sim::SimTime::microseconds(12));
    }
}

TEST(Span, TimestampsAreSimTime)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    simu.spawn(timedPhases(simu, tracer));
    simu.run();

    ASSERT_EQ(tracer.records().size(), 3u);
    const obs::SpanRecord &a = tracer.records()[0];
    const obs::SpanRecord &b = tracer.records()[1];
    const obs::SpanRecord &root = tracer.records()[2];
    EXPECT_EQ(a.end - a.start, 30'000);
    EXPECT_EQ(b.end - b.start, 12'000);
    // Sequential, contiguous phases sum exactly to the root: the
    // invariant tools/trace_report's fig10 --check gates on.
    EXPECT_EQ(b.start, a.end);
    EXPECT_EQ(root.end - root.start,
              (a.end - a.start) + (b.end - b.start));
}

TEST(Tracer, RingBoundDropsOldest)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42, /*ringCapacity=*/4);
    static const char *const names[] = {"p0", "p1", "p2", "p3",
                                        "p4", "p5", "p6"};
    for (const char *n : names) {
        obs::Span span = obs::Span::root(&tracer, n, obs::Layer::Core);
    }
    // The ring compacts by halves (amortized O(1) push): hitting the
    // capacity of 4 drops down to the 2 newest, so after 7 pushes two
    // compactions have discarded p0-p3 and the 3 newest remain.
    ASSERT_EQ(tracer.records().size(), 3u);
    EXPECT_EQ(tracer.dropped(), 4u);
    EXPECT_STREQ(tracer.records()[0].name, "p4");
    EXPECT_STREQ(tracer.records()[2].name, "p6");
}

TEST(Tracer, IdsAreDeterministicPerSeed)
{
    sim::Simulation simA, simB, simC;
    obs::Tracer a(simA, 42), b(simB, 42), c(simC, 7);
    std::uint64_t ta[3], tb[3], tc[3];
    for (int i = 0; i < 3; ++i) {
        ta[i] = a.newTraceId();
        tb[i] = b.newTraceId();
        tc[i] = c.newTraceId();
    }
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(ta[i], tb[i]) << "same seed, same id sequence";
        EXPECT_NE(ta[i], tc[i]) << "different seed, different ids";
        EXPECT_NE(ta[i], 0u) << "0 is reserved for 'no trace'";
    }
}

TEST(Tracer, FeedsMetricsRegistryPerSpan)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    {
        obs::Span root =
            obs::Span::root(&tracer, "invoke", obs::Layer::Core);
        obs::Span child(root.ctx(), "startup", obs::Layer::Sandbox);
    }
    const auto &hists = tracer.metrics().histograms();
    ASSERT_TRUE(hists.count("invoke"));
    ASSERT_TRUE(hists.count("startup"));
    EXPECT_EQ(hists.at("invoke").count(), 1u);
    EXPECT_EQ(hists.at("startup").count(), 1u);
}

TEST(Tracer, ClearResetsRecordsAndMetrics)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    {
        obs::Span span =
            obs::Span::root(&tracer, "invoke", obs::Layer::Core);
    }
    ASSERT_FALSE(tracer.records().empty());
    tracer.clear();
    EXPECT_TRUE(tracer.records().empty());
    EXPECT_TRUE(tracer.metrics().histograms().empty());
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Registry, HistogramPercentilesAreOrderedAndBounded)
{
    obs::Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(double(i));
    EXPECT_EQ(h.count(), 1000u);
    const double p50 = h.percentile(50);
    const double p95 = h.percentile(95);
    const double p99 = h.percentile(99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    // Log buckets are ~9% wide: percentiles are approximate but must
    // stay in the right neighborhood and inside the observed range.
    EXPECT_NEAR(p50, 500.0, 60.0);
    EXPECT_NEAR(p99, 990.0, 100.0);
    EXPECT_GE(p50, h.min());
    EXPECT_LE(p99, h.max());
}

TEST(SpanBuffer, PushIndexIterateAcrossChunks)
{
    sim::Arena arena;
    obs::SpanBuffer buf(arena);
    EXPECT_TRUE(buf.empty());

    // Enough records to span several 128-record chunks.
    for (std::uint64_t i = 0; i < 300; ++i) {
        obs::SpanRecord rec;
        rec.spanId = i + 1;
        buf.push_back(rec);
    }
    ASSERT_EQ(buf.size(), 300u);
    EXPECT_EQ(buf.front().spanId, 1u);
    EXPECT_EQ(buf.back().spanId, 300u);
    EXPECT_EQ(buf[200].spanId, 201u);

    std::uint64_t expect = 1;
    for (const obs::SpanRecord &rec : buf)
        EXPECT_EQ(rec.spanId, expect++);

    const std::vector<obs::SpanRecord> copy = buf.snapshot();
    ASSERT_EQ(copy.size(), 300u);
    EXPECT_EQ(copy[299].spanId, 300u);
}

TEST(SpanBuffer, DropOldestRecyclesWithoutArenaGrowth)
{
    sim::Arena arena;
    obs::SpanBuffer buf(arena);

    // Prime: fill past a few chunks so the free list exists.
    obs::SpanRecord rec;
    for (std::uint64_t i = 0; i < 4 * obs::SpanBuffer::kChunkSize; ++i)
        buf.push_back(rec);
    const std::size_t chunks = arena.chunkCount();

    // Ring churn: many fill/drop cycles must reuse retired chunks,
    // never growing the arena again.
    for (int cycle = 0; cycle < 50; ++cycle) {
        buf.dropOldest(buf.size() - obs::SpanBuffer::kChunkSize);
        for (std::uint64_t i = 0; i < 3 * obs::SpanBuffer::kChunkSize;
             ++i)
            buf.push_back(rec);
    }
    EXPECT_EQ(arena.chunkCount(), chunks);

    // Drop everything: empty but reusable.
    buf.dropOldest(buf.size() + 100);
    EXPECT_TRUE(buf.empty());
    buf.push_back(rec);
    EXPECT_EQ(buf.size(), 1u);
}

// The ring bound keeps the newest spans and counts the loss, with
// the drop-oldest semantics of the old vector implementation.
TEST(SpanBuffer, TracerRingBoundDropsOldest)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42, 8);
    for (int i = 0; i < 20; ++i) {
        obs::Span span =
            obs::Span::root(&tracer, "s", obs::Layer::Core);
    }
    EXPECT_LE(tracer.records().size(), 8u);
    EXPECT_EQ(tracer.dropped() + tracer.records().size(), 20u);
    // The survivors are the newest spans, in order.
    const auto &records = tracer.records();
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_LT(records[i - 1].spanId, records[i].spanId);
    EXPECT_EQ(records.back().spanId, 20u);
}

// In-flight exports must survive arena teardown: snapshots and
// rendered JSON are copies, so clearing the tracer and resetting the
// simulation's arena afterwards cannot corrupt them.
TEST(SpanBuffer, ExportsSurviveClearAndArenaReset)
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    {
        obs::Span root =
            obs::Span::root(&tracer, "invoke", obs::Layer::Core, 1);
        obs::Span child(root.ctx(), "startup", obs::Layer::Sandbox, 1);
    }
    ASSERT_EQ(tracer.records().size(), 2u);
    const std::vector<obs::SpanRecord> snapshot =
        tracer.records().snapshot();

    tracer.clear();
    simu.arena().reset();
    // Clobber the arena region the old records occupied.
    char *clobber =
        static_cast<char *>(simu.arena().allocate(16 * 1024));
    std::memset(clobber, 0xab, 16 * 1024);

    ASSERT_EQ(snapshot.size(), 2u);
    EXPECT_EQ(std::string(snapshot[0].name), "startup");
    EXPECT_EQ(std::string(snapshot[1].name), "invoke");
    EXPECT_EQ(snapshot[0].pu, 1);
}

#endif // MOLECULE_TRACING

} // namespace
