/**
 * @file
 * Exporter tests (obs/export.hh).
 *
 * The Chrome trace-event JSON must be byte-deterministic for a given
 * record sequence and structurally sound (balanced envelope, matched
 * async and flow pairs, per-PU process metadata); the compact binary
 * form must round-trip every record field through writeBinary →
 * readBinary and reject corrupt input instead of mis-parsing it.
 */

#include <gtest/gtest.h>

#include "obs/trace.hh"

#if MOLECULE_TRACING

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.hh"

namespace {

using namespace molecule;

/**
 * A small synthetic trace: one cross-PU invocation (root on pu 0,
 * nIPC hop, sandbox exec on pu 1) plus a second single-PU trace.
 * Names are literals, as the Tracer contract requires.
 */
std::vector<obs::SpanRecord>
makeRecords()
{
    std::vector<obs::SpanRecord> recs;
    auto push = [&recs](std::uint64_t trace, std::uint64_t span,
                        std::uint64_t parent, const char *name,
                        obs::Layer layer, std::int64_t start,
                        std::int64_t end, int pu, const char *detail) {
        obs::SpanRecord r;
        r.traceId = trace;
        r.spanId = span;
        r.parentId = parent;
        r.name = name;
        r.layer = layer;
        r.start = start;
        r.end = end;
        r.pu = pu;
        r.arg = end - start;
        std::strncpy(r.detail, detail, sizeof(r.detail) - 1);
        recs.push_back(r);
    };
    // Children first: the order a real Tracer pushes them in.
    push(0xabcd, 2, 1, "startup", obs::Layer::Sandbox, 100, 4100, 0,
         "image-resize");
    push(0xabcd, 3, 1, "nipc.transfer", obs::Layer::Xpu, 4100, 4600, 0,
         "");
    push(0xabcd, 4, 1, "sandbox.exec", obs::Layer::Sandbox, 4600, 9600,
         1, "");
    push(0xabcd, 1, 0, "invoke", obs::Layer::Core, 100, 9600, 0,
         "image-resize");
    push(0xbeef, 5, 0, "invoke", obs::Layer::Core, 12000, 15000, 1,
         "helloworld");
    return recs;
}

/** Quote-aware brace/bracket balance (same check trace_report runs). */
bool
balanced(const std::string &text)
{
    long brace = 0, bracket = 0;
    bool inString = false, escape = false;
    for (char c : text) {
        if (escape) {
            escape = false;
            continue;
        }
        if (c == '\\') {
            escape = inString;
            continue;
        }
        if (c == '"') {
            inString = !inString;
            continue;
        }
        if (inString)
            continue;
        brace += c == '{' ? 1 : c == '}' ? -1 : 0;
        bracket += c == '[' ? 1 : c == ']' ? -1 : 0;
        if (brace < 0 || bracket < 0)
            return false;
    }
    return brace == 0 && bracket == 0 && !inString;
}

std::size_t
countOf(const std::string &text, const char *needle)
{
    std::size_t n = 0, pos = 0;
    const std::size_t len = std::strlen(needle);
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += len;
    }
    return n;
}

TEST(ChromeTrace, OutputIsByteDeterministic)
{
    const auto recs = makeRecords();
    EXPECT_EQ(obs::chromeTraceJson(recs), obs::chromeTraceJson(recs));
}

TEST(ChromeTrace, StructureIsSound)
{
    const std::string json = obs::chromeTraceJson(makeRecords());
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // One X (complete) event per span.
    EXPECT_EQ(countOf(json, "\"ph\":\"X\""), 5u);
    // One async begin/end pair per trace.
    EXPECT_EQ(countOf(json, "\"ph\":\"b\""), 2u);
    EXPECT_EQ(countOf(json, "\"ph\":\"e\""), 2u);
    // Flow events stitch the cross-PU trace: matched start/finish.
    EXPECT_EQ(countOf(json, "\"ph\":\"s\""),
              countOf(json, "\"ph\":\"f\""));
    EXPECT_GE(countOf(json, "\"ph\":\"s\""), 1u);
    // Per-PU process metadata rows the Perfetto UI groups tracks by.
    EXPECT_NE(json.find("pu0"), std::string::npos);
    EXPECT_NE(json.find("pu1"), std::string::npos);
    EXPECT_NE(json.find("\"sandbox\""), std::string::npos);
}

TEST(ChromeTrace, EmptyRecordListIsStillValid)
{
    const std::string json = obs::chromeTraceJson({});
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Binary, RoundTripPreservesEveryField)
{
    const auto recs = makeRecords();
    const std::string path = "obs_export_test.roundtrip.bin";
    ASSERT_TRUE(obs::writeBinary(path, recs));

    obs::LoadedTrace loaded = obs::readBinary(path);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    ASSERT_EQ(loaded.records.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const auto &a = recs[i];
        const auto &b = loaded.records[i];
        EXPECT_EQ(a.traceId, b.traceId);
        EXPECT_EQ(a.spanId, b.spanId);
        EXPECT_EQ(a.parentId, b.parentId);
        EXPECT_STREQ(a.name, b.name);
        EXPECT_EQ(a.layer, b.layer);
        EXPECT_EQ(a.start, b.start);
        EXPECT_EQ(a.end, b.end);
        EXPECT_EQ(a.pu, b.pu);
        EXPECT_EQ(a.arg, b.arg);
        EXPECT_STREQ(a.detail, b.detail);
    }
    std::remove(path.c_str());
}

TEST(Binary, MissingFileReportsError)
{
    obs::LoadedTrace loaded = obs::readBinary("does-not-exist.bin");
    EXPECT_FALSE(loaded.ok);
    EXPECT_FALSE(loaded.error.empty());
}

TEST(Binary, CorruptMagicIsRejected)
{
    const std::string path = "obs_export_test.corrupt.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOTATRACEFILE-GARBAGE-BYTES";
    }
    obs::LoadedTrace loaded = obs::readBinary(path);
    EXPECT_FALSE(loaded.ok);
    std::remove(path.c_str());
}

} // namespace

#endif // MOLECULE_TRACING
