/**
 * @file
 * TimeSeries collector tests (obs/timeseries.hh) and the
 * HistogramSnapshot delta math they are built on.
 *
 * Pins the window model: the grid aligns to sim time zero, a sample
 * at exactly a boundary lands in the next window, windows close
 * lazily on feed (never via scheduled events), flush() closes the
 * partial tail, and window deltas sum back to run totals exactly —
 * for direct feeds and for watched registries alike. Also pins
 * snapshot minus/merge/countAbove and digest reproducibility. With
 * MOLECULE_TELEMETRY=0 only the snapshot-math tests run (they do not
 * depend on the gate).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/registry.hh"
#include "obs/timeseries.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace {

using namespace molecule;
using sim::SimTime;

// ---------------------------------------------------------------
// HistogramSnapshot math (ungated: registry is always compiled).

TEST(HistogramSnapshot, MinusIsExactlyTheBetweenDistribution)
{
    obs::Histogram h;
    h.add(10.0);
    h.add(100.0);
    const obs::HistogramSnapshot before = h.snapshotBuckets();
    h.add(100.0);
    h.add(1000.0);
    const obs::HistogramSnapshot after = h.snapshotBuckets();

    const obs::HistogramSnapshot delta = after.minus(before);
    EXPECT_EQ(delta.count, 2u);
    EXPECT_DOUBLE_EQ(delta.sum, 1100.0);
    // The 10.0 bucket must not appear: its count did not change.
    for (const auto &[idx, n] : delta.buckets) {
        EXPECT_GT(n, 0u);
        EXPECT_NE(idx, obs::Histogram::bucketOf(10.0));
    }
}

TEST(HistogramSnapshot, MinusOfSelfIsEmpty)
{
    obs::Histogram h;
    h.add(42.0);
    h.add(7.0);
    const obs::HistogramSnapshot snap = h.snapshotBuckets();
    const obs::HistogramSnapshot delta = snap.minus(snap);
    EXPECT_EQ(delta.count, 0u);
    EXPECT_DOUBLE_EQ(delta.sum, 0.0);
    EXPECT_TRUE(delta.buckets.empty());
}

TEST(HistogramSnapshot, PercentileTracksHistogram)
{
    obs::Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(double(i));
    const obs::HistogramSnapshot snap = h.snapshotBuckets();
    // Same bucket geometry: within one ~9% bucket of the histogram's
    // own (range-clamped) answer.
    EXPECT_NEAR(snap.percentile(50), h.percentile(50),
                h.percentile(50) * 0.10);
    EXPECT_NEAR(snap.percentile(99), h.percentile(99),
                h.percentile(99) * 0.10);
    EXPECT_DOUBLE_EQ(snap.percentile(0), snap.percentile(0.0001));
}

TEST(HistogramSnapshot, CountAboveIsBucketExact)
{
    obs::Histogram h;
    h.add(10.0);
    h.add(1000.0);
    h.add(2000.0);
    const obs::HistogramSnapshot snap = h.snapshotBuckets();
    // Buckets strictly above the one holding 100.0.
    EXPECT_EQ(snap.countAbove(100.0), 2u);
    EXPECT_EQ(snap.countAbove(5000.0), 0u);
    EXPECT_EQ(snap.countAbove(0.5), 3u);
}

TEST(HistogramSnapshot, MergeFoldsCountsSumsAndBuckets)
{
    obs::Histogram a;
    a.add(10.0);
    a.add(100.0);
    obs::Histogram b;
    b.add(100.0);
    b.add(9000.0);

    obs::HistogramSnapshot merged = a.snapshotBuckets();
    merged.merge(b.snapshotBuckets());
    EXPECT_EQ(merged.count, 4u);
    EXPECT_DOUBLE_EQ(merged.sum, 9210.0);
    // Shared bucket (100.0) folded, not duplicated.
    std::uint64_t at100 = 0;
    for (const auto &[idx, n] : merged.buckets)
        if (idx == obs::Histogram::bucketOf(100.0))
            at100 = n;
    EXPECT_EQ(at100, 2u);
    for (std::size_t i = 1; i < merged.buckets.size(); ++i)
        EXPECT_LT(merged.buckets[i - 1].first, merged.buckets[i].first);
}

#if MOLECULE_TELEMETRY

// ---------------------------------------------------------------
// The windowed collector.

TEST(TimeSeries, BoundarySampleBelongsToNextWindow)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    const auto id = ts.counterId("requests");

    sim.schedule(SimTime::milliseconds(500), [&] { ts.count(id); });
    // Exactly at the 1 s boundary: must land in window 1, not 0.
    sim.schedule(SimTime::seconds(1), [&] { ts.count(id); });
    sim.schedule(SimTime::milliseconds(1500), [&] { ts.count(id); });
    sim.run();
    ts.flush();

    ASSERT_EQ(ts.windowsClosed(), 2u);
    const obs::WindowRecord &w0 = ts.windows()[0];
    const obs::WindowRecord &w1 = ts.windows()[1];
    EXPECT_EQ(w0.index, 0u);
    ASSERT_NE(w0.find(id), nullptr);
    EXPECT_EQ(w0.find(id)->count, 1);
    EXPECT_EQ(w1.index, 1u);
    ASSERT_NE(w1.find(id), nullptr);
    EXPECT_EQ(w1.find(id)->count, 2);
}

TEST(TimeSeries, QuietWindowsStillClose)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    const auto id = ts.counterId("requests");

    sim.schedule(SimTime::milliseconds(100), [&] { ts.count(id); });
    // Nothing for 3 windows, then one more sample: the catch-up roll
    // must close the empty windows 1..3 too (the grid has no holes).
    sim.schedule(SimTime::milliseconds(4500), [&] { ts.count(id); });
    sim.run();
    ts.flush();

    ASSERT_EQ(ts.windowsClosed(), 5u);
    EXPECT_EQ(ts.windows()[1].find(id), nullptr);
    EXPECT_TRUE(ts.windows()[2].points.empty());
    EXPECT_EQ(ts.windows()[4].find(id)->count, 1);
}

TEST(TimeSeries, WindowDeltasSumToRunTotals)
{
    sim::Simulation sim(7);
    obs::TimeSeriesOptions opts;
    opts.window = SimTime::milliseconds(100);
    obs::TimeSeries ts(sim, opts);
    const auto reqs = ts.counterId("requests", 0);
    const auto lat = ts.histogramId("latency_us", 0);

    for (int i = 1; i <= 50; ++i) {
        sim.schedule(SimTime::milliseconds(i * 17), [&ts, reqs, lat, i] {
            ts.count(reqs, 2);
            ts.observe(lat, double(10 * i));
        });
    }
    sim.run();
    ts.flush();

    std::int64_t sumReqs = 0;
    std::int64_t sumLat = 0;
    double sumLatSum = 0.0;
    for (const obs::WindowRecord &w : ts.windows()) {
        if (const obs::WindowPoint *p = w.find(reqs))
            sumReqs += p->count;
        if (const obs::WindowPoint *p = w.find(lat)) {
            sumLat += p->count;
            sumLatSum += p->sum;
        }
    }
    EXPECT_EQ(sumReqs, 100);
    EXPECT_EQ(sumReqs, ts.counterValue(reqs));
    EXPECT_EQ(sumLat, 50);
    const obs::HistogramSnapshot total = ts.histogramTotal(lat);
    EXPECT_EQ(std::uint64_t(sumLat), total.count);
    EXPECT_DOUBLE_EQ(sumLatSum, total.sum);
}

TEST(TimeSeries, GaugeLastAndMaxPerWindow)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    const auto depth = ts.gaugeId("queue_depth");

    sim.schedule(SimTime::milliseconds(100), [&] { ts.set(depth, 5); });
    sim.schedule(SimTime::milliseconds(200), [&] { ts.set(depth, 9); });
    sim.schedule(SimTime::milliseconds(300), [&] { ts.set(depth, 2); });
    // Window 1: untouched — the gauge must carry the level (2), not
    // the excursion (9).
    sim.schedule(SimTime::milliseconds(1500), [&] { ts.count(
        ts.counterId("tick")); });
    sim.run();
    ts.flush();

    ASSERT_EQ(ts.windowsClosed(), 2u);
    const obs::WindowPoint *w0 = ts.windows()[0].find(depth);
    ASSERT_NE(w0, nullptr);
    EXPECT_DOUBLE_EQ(w0->value, 2.0);
    EXPECT_DOUBLE_EQ(w0->maxValue, 9.0);
    const obs::WindowPoint *w1 = ts.windows()[1].find(depth);
    ASSERT_NE(w1, nullptr);
    EXPECT_DOUBLE_EQ(w1->value, 2.0);
    EXPECT_DOUBLE_EQ(w1->maxValue, 2.0);
}

TEST(TimeSeries, HistogramWindowPercentilesUseBucketDeltas)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    const auto lat = ts.histogramId("latency_us");
    ts.setThreshold(lat, 500.0);

    // Window 0: all fast. Window 1: all slow. Cumulative percentiles
    // would smear; per-window bucket deltas must not.
    sim.schedule(SimTime::milliseconds(100), [&] {
        for (int i = 0; i < 100; ++i)
            ts.observe(lat, 100.0);
    });
    sim.schedule(SimTime::milliseconds(1100), [&] {
        for (int i = 0; i < 100; ++i)
            ts.observe(lat, 10'000.0);
    });
    sim.run();
    ts.flush();

    ASSERT_EQ(ts.windowsClosed(), 2u);
    const obs::WindowPoint *w0 = ts.windows()[0].find(lat);
    const obs::WindowPoint *w1 = ts.windows()[1].find(lat);
    ASSERT_NE(w0, nullptr);
    ASSERT_NE(w1, nullptr);
    EXPECT_NEAR(w0->p99, 100.0, 100.0 * 0.10);
    EXPECT_NEAR(w1->p99, 10'000.0, 10'000.0 * 0.10);
    EXPECT_EQ(w0->above, 0);
    EXPECT_EQ(w1->above, 100);
}

TEST(TimeSeries, WatchedRegistryEmitsWindowDeltas)
{
    sim::Simulation sim(1);
    obs::Registry reg;
    obs::TimeSeries ts(sim);
    ts.watch(reg);

    sim.schedule(SimTime::milliseconds(200), [&] {
        reg.counter("ops").inc(3);
        reg.histogram("us").add(50.0);
        ts.count(ts.counterId("tick")); // drives the roll
    });
    sim.schedule(SimTime::milliseconds(1200), [&] {
        // Watched metrics are sampled lazily at window close, so roll
        // past the boundary *before* mutating: the increment below
        // belongs to window 1.
        ts.count(ts.counterId("tick"));
        reg.counter("ops").inc(4);
    });
    sim.run();
    ts.flush();

    ASSERT_EQ(ts.windowsClosed(), 2u);
    const auto ops = ts.counterId("ops");
    const auto us = ts.histogramId("us");
    const obs::WindowPoint *ops0 = ts.windows()[0].find(ops);
    const obs::WindowPoint *us0 = ts.windows()[0].find(us);
    const obs::WindowPoint *ops1 = ts.windows()[1].find(ops);
    ASSERT_NE(ops0, nullptr);
    ASSERT_NE(us0, nullptr);
    ASSERT_NE(ops1, nullptr);
    EXPECT_EQ(ops0->count, 3);
    EXPECT_EQ(us0->count, 1);
    EXPECT_EQ(ops1->count, 4);
    EXPECT_EQ(ts.windows()[1].find(us), nullptr);
    EXPECT_EQ(ts.counterValue(ops), 7);
}

TEST(TimeSeries, SeriesCreationIsIdempotent)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    const auto a = ts.counterId("m", 1, 2);
    EXPECT_EQ(ts.counterId("m", 1, 2), a);
    EXPECT_NE(ts.counterId("m", 1, 3), a);
    EXPECT_NE(ts.counterId("m", -1, -1), a);
    EXPECT_EQ(ts.seriesCount(), 3u);
    EXPECT_EQ(ts.series(a).tenant, 1);
    EXPECT_EQ(ts.series(a).node, 2);
}

TEST(TimeSeries, RingRetentionKeepsDigestAndCount)
{
    sim::Simulation sim(1);
    obs::TimeSeriesOptions opts;
    opts.window = SimTime::milliseconds(10);
    opts.keepWindows = 4;
    obs::TimeSeries ts(sim, opts);
    const auto id = ts.counterId("x");
    for (int i = 0; i < 20; ++i)
        sim.schedule(SimTime::milliseconds(i * 10 + 5),
                     [&ts, id] { ts.count(id); });
    sim.run();
    ts.flush();

    EXPECT_EQ(ts.windows().size(), 4u);
    EXPECT_EQ(ts.windowsClosed(), 20u);
    EXPECT_EQ(ts.windows().back().index, 19u);
}

TEST(TimeSeries, DigestReproducesAcrossRuns)
{
    const auto run = [] {
        sim::Simulation sim(42);
        obs::TimeSeries ts(sim);
        const auto id = ts.histogramId("lat", 0);
        for (int i = 1; i <= 30; ++i)
            sim.schedule(SimTime::milliseconds(i * 77),
                         [&ts, id, i] { ts.observe(id, double(i)); });
        sim.run();
        ts.flush();
        return ts.digest();
    };
    const std::uint64_t a = run();
    EXPECT_NE(a, 0u);
    EXPECT_EQ(a, run());
}

TEST(TimeSeries, FlushClosesPartialTail)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    const auto id = ts.counterId("x");
    sim.schedule(SimTime::milliseconds(300), [&] { ts.count(id, 5); });
    sim.run();
    EXPECT_EQ(ts.windowsClosed(), 0u);
    ts.flush();
    ASSERT_EQ(ts.windowsClosed(), 1u);
    EXPECT_EQ(ts.windows()[0].find(id)->count, 5);
}

#else // !MOLECULE_TELEMETRY

TEST(TimeSeriesStub, SurfaceIsInert)
{
    // The stub keeps the API shape; nothing to observe.
    SUCCEED();
}

#endif // MOLECULE_TELEMETRY

} // namespace
