/**
 * @file
 * FlightRecorder black-box tests (obs/flight_recorder.hh).
 *
 * The recorder must keep a bounded window ring (older windows fall
 * off), serialize a complete bundle on trigger (reason, trigger
 * instant, windows, alerts), stop dumping past maxDumps while still
 * counting triggers, reproduce bundles byte-for-byte across runs, and
 * persist the newest bundle via writeLast. Compiled out (trivial
 * pass) with MOLECULE_TELEMETRY=0.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.hh"
#include "obs/slo.hh"
#include "obs/timeseries.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace {

using namespace molecule;
using sim::SimTime;

#if MOLECULE_TELEMETRY

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size()))
        ++n;
    return n;
}

/** Close @p windows 100ms windows, one counter tick in each. */
void
closeWindows(sim::Simulation &sim, obs::TimeSeries &ts, int windows)
{
    const auto id = ts.counterId("tick");
    for (int w = 0; w < windows; ++w)
        sim.schedule(SimTime::milliseconds(w * 100 + 50),
                     [&ts, id] { ts.count(id); });
    sim.run();
    ts.flush();
}

TEST(FlightRecorder, RingIsBoundedToKeepWindows)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim, {SimTime::milliseconds(100)});
    obs::FlightRecorderOptions opts;
    opts.keepWindows = 3;
    opts.spanTail = 0;
    obs::FlightRecorder recorder(ts, opts);

    closeWindows(sim, ts, 10);
    recorder.trigger("test.ring", sim.now());

    ASSERT_EQ(recorder.dumpCount(), 1u);
    const std::string &dump = recorder.dumps().front();
    // Only the newest 3 of the 10 closed windows survive the ring.
    EXPECT_EQ(countOccurrences(dump, "\"window\":"), 3u);
    EXPECT_NE(dump.find("\"window\":9"), std::string::npos);
    EXPECT_EQ(dump.find("\"window\":6"), std::string::npos);
}

TEST(FlightRecorder, BundleCarriesReasonTriggerAndAlerts)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim, {SimTime::milliseconds(100)});
    obs::FlightRecorder recorder(ts);

    obs::AlertEvent alert;
    alert.at = SimTime::milliseconds(250);
    alert.window = 2;
    alert.tenant = 1;
    alert.fired = true;
    recorder.onAlert(alert);

    closeWindows(sim, ts, 4);
    recorder.trigger("fault.pu-crash", sim.now());

    ASSERT_EQ(recorder.dumpCount(), 1u);
    const std::string &dump = recorder.dumps().front();
    EXPECT_NE(dump.find("\"reason\":\"fault.pu-crash\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"tenant\":1"), std::string::npos);
    EXPECT_NE(dump.find("\"fired\":true"), std::string::npos);
    // Window records only ("window": also appears in alert JSON).
    EXPECT_EQ(countOccurrences(dump, "\"start_ns\":"), 4u);
}

TEST(FlightRecorder, MaxDumpsSuppressesButTriggersKeepCounting)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim, {SimTime::milliseconds(100)});
    obs::FlightRecorderOptions opts;
    opts.maxDumps = 2;
    obs::FlightRecorder recorder(ts, opts);

    closeWindows(sim, ts, 2);
    recorder.trigger("first", sim.now());
    recorder.trigger("second", sim.now());
    recorder.trigger("suppressed", sim.now());
    recorder.trigger("also-suppressed", sim.now());

    EXPECT_EQ(recorder.triggerCount(), 4u);
    ASSERT_EQ(recorder.dumpCount(), 2u);
    // First-triggers win: the retained bundles are the earliest two.
    EXPECT_NE(recorder.dumps()[0].find("\"reason\":\"first\""),
              std::string::npos);
    EXPECT_NE(recorder.dumps()[1].find("\"reason\":\"second\""),
              std::string::npos);
}

TEST(FlightRecorder, BundlesReproduceByteForByte)
{
    const auto run = [] {
        sim::Simulation sim(7);
        obs::TimeSeries ts(sim, {SimTime::milliseconds(100)});
        obs::FlightRecorder recorder(ts);
        const auto lat = ts.histogramId("tenant.e2e_us", 0);
        for (int w = 0; w < 5; ++w)
            sim.schedule(SimTime::milliseconds(w * 100 + 10),
                         [&ts, lat, w] {
                             ts.observe(lat, 100.0 * (w + 1));
                         });
        sim.run();
        ts.flush();
        recorder.trigger("replay.check", sim.now());
        return recorder.dumps().front();
    };
    const std::string a = run();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, run());
}

TEST(FlightRecorder, WriteLastPersistsNewestBundle)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim, {SimTime::milliseconds(100)});
    obs::FlightRecorder recorder(ts);

    EXPECT_FALSE(recorder.writeLast("fr_test_dump.json")); // no bundle

    closeWindows(sim, ts, 3);
    recorder.trigger("older", SimTime::milliseconds(100));
    recorder.trigger("newest", sim.now());
    ASSERT_TRUE(recorder.writeLast("fr_test_dump.json"));

    std::ifstream in("fr_test_dump.json");
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), recorder.dumps().back());
    EXPECT_NE(buf.str().find("\"reason\":\"newest\""),
              std::string::npos);
}

#else // !MOLECULE_TELEMETRY

TEST(FlightRecorderStub, SurfaceIsInert)
{
    SUCCEED();
}

#endif // MOLECULE_TELEMETRY

} // namespace
