/**
 * @file
 * SloMonitor burn-rate tests (obs/slo.hh).
 *
 * Synthetic feeds drive the dual-window rule through its edges: a
 * burst too short for the long window must not fire, a sustained burn
 * must fire exactly once and resolve exactly once after recovery,
 * error-rate objectives read the completed/errors counters, alerts
 * reach sinks at the window close that tipped them, and the alert
 * digest reproduces bit-for-bit across runs. Compiled out (trivial
 * pass) with MOLECULE_TELEMETRY=0.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/slo.hh"
#include "obs/timeseries.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace {

using namespace molecule;
using sim::SimTime;

#if MOLECULE_TELEMETRY

obs::SloSpec
latencySpec(double thresholdUs = 1000.0, double target = 0.99,
            double burn = 4.0)
{
    obs::SloSpec spec;
    spec.tenants = 1;
    obs::SloObjective o;
    o.name = "lat";
    o.kind = obs::SloObjective::Kind::Latency;
    o.thresholdUs = thresholdUs;
    o.targetFraction = target;
    o.burnThreshold = burn;
    o.shortWindows = 2;
    o.longWindows = 6;
    spec.objectives = {o};
    return spec;
}

/** Feed @p bad slow + @p good fast samples in window @p w. */
void
feedWindow(sim::Simulation &sim, obs::TimeSeries &ts, std::uint32_t id,
           int w, int good, int bad)
{
    sim.schedule(SimTime::milliseconds(w * 1000 + 500),
                 [&ts, id, good, bad] {
                     for (int i = 0; i < good; ++i)
                         ts.observe(id, 100.0);
                     for (int i = 0; i < bad; ++i)
                         ts.observe(id, 50'000.0);
                 });
}

TEST(SloMonitor, SustainedBurnFiresOnceAndResolvesOnce)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    obs::SloMonitor monitor(ts, latencySpec());
    const auto lat = ts.histogramId("tenant.e2e_us", 0);

    // 4 windows of heavy burn (50% bad >> 4x the 1% budget), then 8
    // clean windows so both burn windows drain below threshold.
    for (int w = 0; w < 4; ++w)
        feedWindow(sim, ts, lat, w, 50, 50);
    for (int w = 4; w < 12; ++w)
        feedWindow(sim, ts, lat, w, 100, 0);
    sim.run();
    ts.flush();

    ASSERT_EQ(monitor.alertCount(), 2u);
    const obs::AlertEvent &fire = monitor.alerts()[0];
    const obs::AlertEvent &resolve = monitor.alerts()[1];
    EXPECT_TRUE(fire.fired);
    EXPECT_EQ(fire.tenant, 0u);
    EXPECT_GE(fire.burnShort, 4.0);
    EXPECT_GE(fire.burnLong, 4.0);
    EXPECT_FALSE(resolve.fired);
    EXPECT_GT(resolve.window, fire.window);
    EXPECT_FALSE(monitor.firing(0, 0));
}

TEST(SloMonitor, ShortBurstAloneDoesNotFire)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    // Long window = 6: one bad window over a clean history cannot
    // push the 6-window burn over threshold.
    obs::SloSpec spec = latencySpec();
    obs::SloMonitor monitor(ts, spec);
    const auto lat = ts.histogramId("tenant.e2e_us", 0);

    for (int w = 0; w < 5; ++w)
        feedWindow(sim, ts, lat, w, 100, 0);
    feedWindow(sim, ts, lat, 5, 92, 8); // 8% bad, one window only
    for (int w = 6; w < 10; ++w)
        feedWindow(sim, ts, lat, w, 100, 0);
    sim.run();
    ts.flush();

    EXPECT_EQ(monitor.alertCount(), 0u);
    EXPECT_FALSE(monitor.firing(0, 0));
}

TEST(SloMonitor, ErrorRateObjectiveReadsCounters)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    obs::SloSpec spec;
    spec.tenants = 2;
    obs::SloObjective o;
    o.name = "errors";
    o.kind = obs::SloObjective::Kind::ErrorRate;
    o.targetFraction = 0.99;
    o.burnThreshold = 4.0;
    o.shortWindows = 1;
    o.longWindows = 2;
    spec.objectives = {o};
    obs::SloMonitor monitor(ts, spec);
    const auto done0 = ts.counterId("tenant.completed", 0);
    const auto err0 = ts.counterId("tenant.errors", 0);
    const auto done1 = ts.counterId("tenant.completed", 1);

    // Tenant 0 burns its error budget; tenant 1 stays clean.
    for (int w = 0; w < 3; ++w)
        sim.schedule(SimTime::milliseconds(w * 1000 + 500),
                     [&ts, done0, err0, done1] {
                         ts.count(done0, 80);
                         ts.count(err0, 20);
                         ts.count(done1, 100);
                     });
    sim.run();
    ts.flush();

    EXPECT_TRUE(monitor.firing(0, 0));
    EXPECT_FALSE(monitor.firing(1, 0));
    const auto totals = monitor.totals(0, 0);
    EXPECT_EQ(totals.good, 240);
    EXPECT_EQ(totals.bad, 60);
}

struct CountingSink final : obs::AlertSink
{
    std::vector<obs::AlertEvent> seen;

    void onAlert(const obs::AlertEvent &a) override
    {
        seen.push_back(a);
    }
};

TEST(SloMonitor, SinksSeeTransitionsAtWindowClose)
{
    sim::Simulation sim(1);
    obs::TimeSeries ts(sim);
    obs::SloMonitor monitor(ts, latencySpec());
    CountingSink sink;
    monitor.addSink(&sink);
    const auto lat = ts.histogramId("tenant.e2e_us", 0);

    for (int w = 0; w < 4; ++w)
        feedWindow(sim, ts, lat, w, 0, 100);
    sim.run();
    ts.flush();

    ASSERT_EQ(sink.seen.size(), monitor.alertCount());
    ASSERT_FALSE(sink.seen.empty());
    // The transition instant is the close of the tipping window.
    EXPECT_EQ(sink.seen[0].at,
              SimTime::seconds(std::int64_t(sink.seen[0].window) + 1));
}

TEST(SloMonitor, AlertDigestReproduces)
{
    const auto run = [] {
        sim::Simulation sim(9);
        obs::TimeSeries ts(sim);
        obs::SloMonitor monitor(ts, latencySpec());
        const auto lat = ts.histogramId("tenant.e2e_us", 0);
        for (int w = 0; w < 4; ++w)
            feedWindow(sim, ts, lat, w, 10, 90);
        for (int w = 4; w < 12; ++w)
            feedWindow(sim, ts, lat, w, 100, 0);
        sim.run();
        ts.flush();
        return monitor.alertDigest();
    };
    const std::uint64_t a = run();
    EXPECT_NE(a, 0u);
    EXPECT_EQ(a, run());
}

#else // !MOLECULE_TELEMETRY

TEST(SloMonitorStub, SurfaceIsInert)
{
    SUCCEED();
}

#endif // MOLECULE_TELEMETRY

} // namespace
