/**
 * @file
 * Per-simulation tracer isolation and non-perturbation tests.
 *
 * The Tracer is a per-replica collector (obs/trace.hh determinism
 * rules): SweepRunner replicas running the same scenario on separate
 * threads must each produce a complete, byte-identical trace with no
 * cross-talk, and attaching a tracer must not move a single simulated
 * timestamp relative to an untraced run — observation does not
 * perturb.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "obs/trace.hh"
#include "sim/sweep.hh"

#if MOLECULE_TRACING
#include "obs/export.hh"
#endif

namespace {

using namespace molecule;

/**
 * Latency fingerprint of a three-invocation scenario (cold + warm +
 * cross-PU cold) on a CPU+DPU server; traced when @p traced, with the
 * exported JSON returned via @p jsonOut.
 */
std::vector<std::int64_t>
scenarioFingerprint(bool traced, std::string *jsonOut = nullptr)
{
    sim::Simulation simu;
    auto computer =
        hw::buildCpuDpuServer(simu, 2, hw::DpuGeneration::Bf1);

#if MOLECULE_TRACING
    obs::Tracer tracer(simu, 42);
#endif
    core::MoleculeOptions options;
#if MOLECULE_TRACING
    if (traced)
        options.tracer = &tracer;
#else
    (void)traced;
#endif
    core::Molecule runtime(*computer, options);
    runtime.registerCpuFunction("image-resize",
                                {hw::PuType::HostCpu, hw::PuType::Dpu});
    runtime.registerCpuFunction("helloworld",
                                {hw::PuType::HostCpu, hw::PuType::Dpu});
    runtime.start();

    std::vector<std::int64_t> fp;
    auto record = [&fp](const obs::InvocationRecord &rec) {
        fp.push_back(rec.startup.raw());
        fp.push_back(rec.communication.raw());
        fp.push_back(rec.execution.raw());
        fp.push_back(rec.endToEnd.raw());
        fp.push_back(rec.coldStart ? 1 : 0);
    };
    record(runtime.invokeSync("image-resize", 0).value()); // cold
    record(runtime.invokeSync("image-resize", 0).value()); // warm
    record(runtime.invokeSync("helloworld", 1).value());   // cold, remote PU

#if MOLECULE_TRACING
    if (traced && jsonOut != nullptr)
        *jsonOut = obs::chromeTraceJson(tracer.records());
#else
    (void)jsonOut;
#endif
    return fp;
}

TEST(Isolation, TracingDoesNotPerturbTheSimulation)
{
    // Identical simulated results with and without a tracer attached:
    // spans only read the clock. This is the tracing analogue of the
    // determinism suite's golden-digest invariance.
    EXPECT_EQ(scenarioFingerprint(false), scenarioFingerprint(true));
}

#if MOLECULE_TRACING

TEST(Isolation, SweepReplicasProduceIdenticalIndependentTraces)
{
    // Serial reference trace.
    std::string reference;
    (void)scenarioFingerprint(true, &reference);
    ASSERT_FALSE(reference.empty());

    // Six replicas across the SweepRunner's threads, each with its
    // own Simulation and Tracer. Any cross-replica leakage (shared
    // collector, ambient-id bleed into parenting, id-counter races)
    // would show up as a byte diff against the serial reference.
    sim::SweepRunner pool;
    auto traces = pool.map<std::string>(6, [](std::size_t) {
        std::string json;
        (void)scenarioFingerprint(true, &json);
        return json;
    });
    ASSERT_EQ(traces.size(), 6u);
    for (std::size_t i = 0; i < traces.size(); ++i)
        EXPECT_EQ(traces[i], reference) << "replica " << i;
}

TEST(Isolation, TracesAreCompleteUnderSweepRunner)
{
    // Beyond byte-equality: each replica's trace must independently
    // contain the full layer coverage (no half-recorded replicas).
    sim::SweepRunner pool;
    auto traces = pool.map<std::string>(2, [](std::size_t) {
        std::string json;
        (void)scenarioFingerprint(true, &json);
        return json;
    });
    for (const auto &json : traces) {
        for (const char *layer :
             {"\"core\"", "\"os\"", "\"sandbox\"", "\"hw\""})
            EXPECT_NE(json.find(layer), std::string::npos) << layer;
    }
}

#endif // MOLECULE_TRACING

} // namespace
