/**
 * @file
 * Fleet: construction, catalog fan-out, core table — and the cluster
 * golden: generator and fleet digests bit-identical across replays,
 * serial and on sim::SweepRunner workers.
 */

#include "cluster/fleet.hh"

#include <gtest/gtest.h>

#include "cluster/gateway.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"

namespace {

using namespace molecule;
using cluster::Fleet;
using cluster::FleetSpec;
using sim::SimTime;

TEST(FleetTest, BuildsTheRequestedShape)
{
    sim::Simulation sim;
    FleetSpec spec;
    spec.nodes = 3;
    spec.dpusPerNode = 2;
    Fleet fleet(sim, spec);
    EXPECT_EQ(fleet.size(), 3);
    EXPECT_EQ(fleet.totalPus(), 9); // host + 2 DPUs per node
    for (int i = 0; i < fleet.size(); ++i)
        EXPECT_EQ(fleet.computer(i).puCount(), 3);
}

TEST(FleetTest, CoreTableCoversEveryPu)
{
    sim::Simulation sim;
    FleetSpec spec;
    spec.nodes = 2;
    spec.dpusPerNode = 1;
    Fleet fleet(sim, spec);
    const auto cores = fleet.coreTable();
    EXPECT_EQ(int(cores.size()), fleet.totalPus());
    for (const auto &[key, n] : cores)
        EXPECT_GT(n, 0);
}

TEST(FleetTest, RegistrationFansOutToEveryNode)
{
    sim::Simulation sim;
    FleetSpec spec;
    spec.nodes = 2;
    spec.dpusPerNode = 1;
    Fleet fleet(sim, spec);
    fleet.registerCpuFunction("helloworld",
                              {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();
    for (int i = 0; i < fleet.size(); ++i) {
        const auto rec = fleet.node(i).invokeSync("helloworld");
        ASSERT_TRUE(rec.ok()) << "node " << i;
        EXPECT_GT(rec.value().endToEnd, SimTime(0));
    }
}

/** One small end-to-end cluster run; returns (stream, fleet) digests. */
std::pair<std::uint64_t, std::uint64_t>
goldenRun(std::uint64_t seed)
{
    load::TraceSpec trace;
    trace.seed = seed;
    trace.ratePerSecond = 120.0;
    trace.duration = SimTime::fromSeconds(3);
    trace.functions = {"helloworld", "pyaes"};
    trace.tenants = {
        {"alpha", 2.0, 1.2, 1},
        {"beta", 1.0, 0.9, 2},
    };

    sim::Simulation sim(seed);
    FleetSpec fleetSpec;
    fleetSpec.nodes = 2;
    fleetSpec.dpusPerNode = 1;
    Fleet fleet(sim, fleetSpec);
    for (const auto &fn : trace.functions)
        fleet.registerCpuFunction(fn,
                                  {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();

    obs::Registry registry;
    cluster::ClusterStats stats(registry);
    cluster::WarmAffinityPolicy policy;
    cluster::AdmissionOptions admission;
    admission.tokensPerSecond = 100.0;
    admission.bucketCapacity = 20.0;
    cluster::GatewayConfig cfg =
        cluster::GatewayConfig::forFunctions(trace.functions, stats);
    cfg.admission = admission;
    cfg.dispatch = &policy;
    cluster::ClusterGateway gateway(fleet, cfg);

    load::OpenLoopGenerator gen(trace);
    sim.spawn(load::drive(sim, gen, gateway));
    sim.run();
    return {load::streamDigest(trace), stats.digest()};
}

TEST(ClusterGoldenTest, DigestsReplayBitForBitSerially)
{
    for (std::uint64_t seed : {42ULL, 7ULL, 1ULL}) {
        const auto a = goldenRun(seed);
        const auto b = goldenRun(seed);
        EXPECT_EQ(a.first, b.first) << "stream, seed " << seed;
        EXPECT_EQ(a.second, b.second) << "fleet, seed " << seed;
    }
}

TEST(ClusterGoldenTest, ThreadedReplicasMatchTheSerialGolden)
{
    constexpr std::uint64_t kSeeds[] = {42, 7, 1, 1234, 5678};
    constexpr std::size_t kN = std::size(kSeeds);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> serial;
    serial.reserve(kN);
    for (std::uint64_t seed : kSeeds)
        serial.push_back(goldenRun(seed));

    sim::SweepRunner pool;
    using Digests = std::pair<std::uint64_t, std::uint64_t>;
    const auto threaded = pool.map<Digests>(
        kN, [&](std::size_t i) { return goldenRun(kSeeds[i]); });

    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(serial[i].first, threaded[i].first)
            << "stream, seed " << kSeeds[i];
        EXPECT_EQ(serial[i].second, threaded[i].second)
            << "fleet, seed " << kSeeds[i];
    }
    // Distinct seeds produce distinct streams (sanity on the golden).
    EXPECT_NE(serial[0].first, serial[1].first);
}

} // namespace
