/**
 * @file
 * Per-tenant accounting through the cluster plane.
 *
 * Tenant ids ride every arrival from the generator through admission
 * to the completion record; the scoreboard's per-tenant rows must
 * conserve against the cluster totals at every stage (arrivals,
 * admitted, shed, dropped, completed, errors), under both drop
 * policies. Attaching the telemetry plane must not move the stats
 * digest — observation is read-only (that check compiles only with
 * MOLECULE_TELEMETRY=1).
 */

#include "cluster/gateway.hh"

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/timeseries.hh"
#include "sim/simulation.hh"

namespace {

using namespace molecule;
using cluster::AdmissionOptions;
using cluster::ClusterGateway;
using cluster::ClusterStats;
using cluster::ClusterSummary;
using cluster::DropPolicy;
using cluster::Fleet;
using cluster::FleetSpec;
using sim::SimTime;

load::TraceSpec
twoTenantTrace(double ratePerSecond, double seconds,
               std::uint64_t seed = 42)
{
    load::TraceSpec trace;
    trace.seed = seed;
    trace.ratePerSecond = ratePerSecond;
    trace.duration = SimTime::fromSeconds(seconds);
    trace.functions = {"helloworld", "pyaes"};
    load::TenantSpec alpha;
    alpha.name = "alpha";
    alpha.share = 3.0;
    alpha.permuteSalt = 1;
    load::TenantSpec beta;
    beta.name = "beta";
    beta.share = 1.0;
    beta.zipfExponent = 0.8;
    beta.permuteSalt = 2;
    trace.tenants = {alpha, beta};
    return trace;
}

struct Harness
{
    sim::Simulation sim;
    Fleet fleet;
    obs::Registry registry;
    ClusterStats stats;
    cluster::LeastOutstandingPolicy policy;

    explicit Harness(std::uint64_t seed = 42)
        : sim(seed), fleet(sim, spec()), stats(registry)
    {
        fleet.registerCpuFunction(
            "helloworld", {hw::PuType::HostCpu, hw::PuType::Dpu});
        fleet.registerCpuFunction(
            "pyaes", {hw::PuType::HostCpu, hw::PuType::Dpu});
        fleet.start();
    }

    static FleetSpec
    spec()
    {
        FleetSpec s;
        s.nodes = 2;
        s.dpusPerNode = 1;
        return s;
    }

    ClusterSummary
    run(const AdmissionOptions &admission, const load::TraceSpec &trace)
    {
        cluster::GatewayConfig cfg =
            cluster::GatewayConfig::forFunctions(
                {"helloworld", "pyaes"}, stats);
        cfg.admission = admission;
        cfg.dispatch = &policy;
        ClusterGateway gateway(fleet, cfg);
        load::OpenLoopGenerator gen(trace);
        const SimTime t0 = sim.now();
        sim.spawn(load::drive(sim, gen, gateway));
        sim.run();
        EXPECT_TRUE(gateway.idle());
        return stats.summarize(sim.now() - t0, fleet.coreTable());
    }
};

void
expectTenantRowsConserve(const ClusterSummary &s)
{
    ASSERT_EQ(s.tenants.size(), 2u);
    std::int64_t arrivals = 0;
    std::int64_t admitted = 0;
    std::int64_t shed = 0;
    std::int64_t dropped = 0;
    std::int64_t completed = 0;
    std::int64_t errors = 0;
    for (const auto &t : s.tenants) {
        EXPECT_EQ(t.arrivals, t.admitted + t.shed + t.dropped);
        EXPECT_EQ(t.admitted, t.completed + t.errors);
        arrivals += t.arrivals;
        admitted += t.admitted;
        shed += t.shed;
        dropped += t.dropped;
        completed += t.completed;
        errors += t.errors;
    }
    EXPECT_EQ(arrivals, s.arrivals);
    EXPECT_EQ(admitted, s.admitted);
    EXPECT_EQ(shed, s.shed);
    EXPECT_EQ(dropped, s.dropped);
    EXPECT_EQ(completed, s.completed);
    EXPECT_EQ(errors, s.errors);
}

TEST(TenantAccountingTest, RowsConserveUnderShedding)
{
    Harness h;
    AdmissionOptions admission;
    admission.tokensPerSecond = 50.0;
    admission.bucketCapacity = 10.0;
    const auto s = h.run(admission, twoTenantTrace(300.0, 4.0));
    EXPECT_GT(s.shed, 0);
    expectTenantRowsConserve(s);
    // The 3:1 share split shows up in per-tenant arrivals.
    EXPECT_GT(s.tenants[0].arrivals, s.tenants[1].arrivals);
    EXPECT_NEAR(double(s.tenants[0].arrivals),
                0.75 * double(s.arrivals),
                0.05 * double(s.arrivals));
}

TEST(TenantAccountingTest, RowsConserveUnderDropNewest)
{
    Harness h;
    AdmissionOptions admission;
    admission.maxOutstandingPerNode = 1;
    admission.queueCapacity = 4;
    admission.dropPolicy = DropPolicy::DropNewest;
    const auto s = h.run(admission, twoTenantTrace(400.0, 2.0));
    EXPECT_GT(s.dropped, 0);
    expectTenantRowsConserve(s);
}

TEST(TenantAccountingTest, RowsConserveUnderDropOldestEviction)
{
    // DropOldest charges the drop to the *evicted* arrival's tenant,
    // not the newcomer's — per-tenant conservation only balances if
    // the attribution is consistent on both sides of the eviction.
    Harness h;
    AdmissionOptions admission;
    admission.maxOutstandingPerNode = 1;
    admission.queueCapacity = 4;
    admission.dropPolicy = DropPolicy::DropOldest;
    const auto s = h.run(admission, twoTenantTrace(400.0, 2.0));
    EXPECT_GT(s.dropped, 0);
    expectTenantRowsConserve(s);
    EXPECT_GT(s.tenants[0].dropped + s.tenants[1].dropped, 0);
}

TEST(TenantAccountingTest, LatencyRowsArePerTenant)
{
    Harness h;
    AdmissionOptions admission;
    const auto s = h.run(admission, twoTenantTrace(100.0, 3.0));
    for (const auto &t : s.tenants) {
        ASSERT_GT(t.completed, 0);
        EXPECT_GT(t.p50Us, 0.0);
        EXPECT_LE(t.p50Us, t.p99Us);
        EXPECT_GT(t.meanUs, 0.0);
    }
}

TEST(TenantAccountingTest, DigestCoversTenantSplit)
{
    // Same totals, different per-tenant split => different digest.
    obs::Registry regA;
    ClusterStats a(regA);
    a.onArrival(0);
    a.onArrival(1);
    obs::Registry regB;
    ClusterStats b(regB);
    b.onArrival(0);
    b.onArrival(0);
    EXPECT_NE(a.digest(), b.digest());
}

#if MOLECULE_TELEMETRY

TEST(TenantAccountingTest, TelemetryAttachmentDoesNotPerturb)
{
    const auto digest = [](bool telemetry) {
        Harness h;
        obs::TimeSeries ts(h.sim, {SimTime::seconds(1)});
        if (telemetry)
            h.stats.attachTelemetry(&ts);
        AdmissionOptions admission;
        admission.tokensPerSecond = 80.0;
        h.run(admission, twoTenantTrace(150.0, 3.0));
        if (telemetry)
            ts.flush();
        return h.stats.digest();
    };
    EXPECT_EQ(digest(false), digest(true));
}

#endif // MOLECULE_TELEMETRY

} // namespace
