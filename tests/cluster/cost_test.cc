/**
 * @file
 * Unit tests for the dollar-cost model: per-invocation arithmetic,
 * rate ordering (DPU < host < GPU < FPGA seconds), and the Pareto
 * frontier's dominance marking and deterministic ordering.
 */

#include <gtest/gtest.h>

#include "cluster/cost.hh"

namespace {

using namespace molecule;
using cluster::CostModel;
using cluster::CostRates;
using cluster::ParetoPoint;
using hw::PuType;
using sim::SimTime;

TEST(CostModel, RateCardOrdersPuKinds)
{
    CostModel m;
    EXPECT_LT(m.perSecond(PuType::Dpu), m.perSecond(PuType::HostCpu));
    EXPECT_LT(m.perSecond(PuType::HostCpu),
              m.perSecond(PuType::GpuHost));
    EXPECT_LT(m.perSecond(PuType::GpuHost),
              m.perSecond(PuType::FpgaHost));
}

TEST(CostModel, InvocationCostIsExactArithmetic)
{
    CostRates rates;
    rates.hostCpuSecond = 2.0;
    rates.perInvocation = 0.5;
    rates.perTransferGb = 4.0;
    CostModel m(rates);
    // 250 ms on host + flat fee + half a GB of transfer.
    const double dollars = m.invocationCost(
        PuType::HostCpu, SimTime::fromSeconds(0.25), 1ull << 29);
    EXPECT_DOUBLE_EQ(dollars, 0.25 * 2.0 + 0.5 + 0.5 * 4.0);
}

TEST(CostModel, ZeroTransferChargesNoEgress)
{
    CostModel m;
    const double local =
        m.invocationCost(PuType::Dpu, SimTime::fromSeconds(1.0), 0);
    const double remote = m.invocationCost(
        PuType::Dpu, SimTime::fromSeconds(1.0), 1ull << 30);
    EXPECT_DOUBLE_EQ(local,
                     m.rates().dpuSecond + m.rates().perInvocation);
    EXPECT_DOUBLE_EQ(remote - local, m.rates().perTransferGb);
}

TEST(CostModel, DpuSecondsAreCheaperThanHostSeconds)
{
    // The paper's pricing argument in one line: identical execution is
    // cheaper on the DPU.
    CostModel m;
    const auto exec = SimTime::fromSeconds(0.1);
    EXPECT_LT(m.invocationCost(PuType::Dpu, exec, 0),
              m.invocationCost(PuType::HostCpu, exec, 0));
}

TEST(ParetoFrontier, MarksDominatedPoints)
{
    std::vector<ParetoPoint> pts(3);
    pts[0] = {"fast-dear", 100.0, 9.0, 0.0, false};
    pts[1] = {"slow-cheap", 900.0, 1.0, 0.0, false};
    pts[2] = {"slow-dear", 900.0, 9.0, 0.0, false}; // dominated twice
    const auto frontier = cluster::paretoFrontier(pts);
    EXPECT_FALSE(pts[0].dominated);
    EXPECT_FALSE(pts[1].dominated);
    EXPECT_TRUE(pts[2].dominated);
    ASSERT_EQ(frontier.size(), 2u);
    EXPECT_EQ(frontier[0].label, "fast-dear");
    EXPECT_EQ(frontier[1].label, "slow-cheap");
}

TEST(ParetoFrontier, EqualOnBothAxesDoesNotDominate)
{
    std::vector<ParetoPoint> pts(2);
    pts[0] = {"a", 100.0, 5.0, 0.0, false};
    pts[1] = {"b", 100.0, 5.0, 0.0, false};
    const auto frontier = cluster::paretoFrontier(pts);
    EXPECT_EQ(frontier.size(), 2u);
    EXPECT_FALSE(pts[0].dominated);
    EXPECT_FALSE(pts[1].dominated);
}

TEST(ParetoFrontier, TieOnOneAxisStrictlyBetterOtherDominates)
{
    std::vector<ParetoPoint> pts(2);
    pts[0] = {"cheaper", 100.0, 1.0, 0.0, false};
    pts[1] = {"dearer", 100.0, 2.0, 0.0, false};
    const auto frontier = cluster::paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].label, "cheaper");
    EXPECT_TRUE(pts[1].dominated);
}

TEST(ParetoFrontier, SortedByLatencyThenCostThenLabel)
{
    std::vector<ParetoPoint> pts(4);
    pts[0] = {"d", 300.0, 1.0, 0.0, false};
    pts[1] = {"b", 100.0, 5.0, 0.0, false};
    pts[2] = {"a", 100.0, 5.0, 0.0, false};
    pts[3] = {"c", 200.0, 3.0, 0.0, false};
    const auto frontier = cluster::paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 4u);
    EXPECT_EQ(frontier[0].label, "a");
    EXPECT_EQ(frontier[1].label, "b");
    EXPECT_EQ(frontier[2].label, "c");
    EXPECT_EQ(frontier[3].label, "d");
}

TEST(ParetoFrontier, SingleAndEmptyInputs)
{
    std::vector<ParetoPoint> none;
    EXPECT_TRUE(cluster::paretoFrontier(none).empty());
    std::vector<ParetoPoint> one(1);
    one[0] = {"only", 50.0, 2.0, 0.0, false};
    const auto frontier = cluster::paretoFrontier(one);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].label, "only");
}

} // namespace
