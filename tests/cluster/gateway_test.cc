/**
 * @file
 * ClusterGateway: dispatch-policy picks, token-bucket shedding,
 * bounded-queue drop policies, arrival accounting conservation and
 * digest reproducibility.
 */

#include "cluster/gateway.hh"

#include <gtest/gtest.h>

#include "sim/simulation.hh"

namespace {

using namespace molecule;
using cluster::AdmissionOptions;
using cluster::ClusterGateway;
using cluster::ClusterStats;
using cluster::DropPolicy;
using cluster::Fleet;
using cluster::FleetSpec;
using load::Arrival;
using sim::SimTime;

Arrival
arrival(std::uint32_t fn = 0)
{
    Arrival a;
    a.fn = fn;
    return a;
}

TEST(DispatchPolicyTest, RoundRobinRotatesAndSkipsFullNodes)
{
    cluster::RoundRobinPolicy p;
    const int out1[] = {0, 0, 0};
    EXPECT_EQ(p.pick(arrival(), out1, 4), 0);
    EXPECT_EQ(p.pick(arrival(), out1, 4), 1);
    EXPECT_EQ(p.pick(arrival(), out1, 4), 2);
    EXPECT_EQ(p.pick(arrival(), out1, 4), 0);
    const int out2[] = {1, 4, 0}; // node 1 at cap
    EXPECT_EQ(p.pick(arrival(), out2, 4), 2);
    EXPECT_EQ(p.pick(arrival(), out2, 4), 0);
    const int full[] = {4, 4, 4};
    EXPECT_EQ(p.pick(arrival(), full, 4), -1);
}

TEST(DispatchPolicyTest, LeastOutstandingPicksArgminLowestIdTies)
{
    cluster::LeastOutstandingPolicy p;
    const int out[] = {3, 1, 1, 2};
    EXPECT_EQ(p.pick(arrival(), out, 4), 1);
    const int tied[] = {2, 2, 2};
    EXPECT_EQ(p.pick(arrival(), tied, 4), 0);
    const int full[] = {4, 4};
    EXPECT_EQ(p.pick(arrival(), full, 4), -1);
}

TEST(DispatchPolicyTest, WarmAffinityKeepsAFunctionHome)
{
    cluster::WarmAffinityPolicy p;
    const int balanced[] = {1, 0, 0};
    // First sight of fn 7: least-outstanding, adopted as home.
    EXPECT_EQ(p.pick(arrival(7), balanced, 4), 1);
    const int skewed[] = {0, 3, 3};
    // Home node 1 is busier now but not full: stay home.
    EXPECT_EQ(p.pick(arrival(7), skewed, 4), 1);
    const int homeFull[] = {0, 4, 3};
    // Home at cap: fall back and adopt the fallback.
    EXPECT_EQ(p.pick(arrival(7), homeFull, 4), 0);
    EXPECT_EQ(p.pick(arrival(7), balanced, 4), 0);
}

struct Harness
{
    sim::Simulation sim;
    Fleet fleet;
    obs::Registry registry;
    ClusterStats stats;
    cluster::LeastOutstandingPolicy policy;

    explicit Harness(int nodes = 2, std::uint64_t seed = 42)
        : sim(seed), fleet(sim, spec(nodes)), stats(registry)
    {
        fleet.registerCpuFunction(
            "helloworld", {hw::PuType::HostCpu, hw::PuType::Dpu});
        fleet.registerCpuFunction(
            "pyaes", {hw::PuType::HostCpu, hw::PuType::Dpu});
        fleet.start();
    }

    static FleetSpec
    spec(int nodes)
    {
        FleetSpec s;
        s.nodes = nodes;
        s.dpusPerNode = 1;
        return s;
    }

    cluster::ClusterSummary
    run(const AdmissionOptions &admission, double ratePerSecond,
        double seconds, std::uint64_t seed = 42)
    {
        cluster::GatewayConfig cfg =
            cluster::GatewayConfig::forFunctions(
                {"helloworld", "pyaes"}, stats);
        cfg.admission = admission;
        cfg.dispatch = &policy;
        ClusterGateway gateway(fleet, cfg);
        load::TraceSpec trace;
        trace.seed = seed;
        trace.ratePerSecond = ratePerSecond;
        trace.duration = SimTime::fromSeconds(seconds);
        trace.functions = {"helloworld", "pyaes"};
        load::OpenLoopGenerator gen(trace);
        const SimTime t0 = sim.now();
        sim.spawn(load::drive(sim, gen, gateway));
        sim.run();
        EXPECT_TRUE(gateway.idle());
        return stats.summarize(sim.now() - t0, fleet.coreTable());
    }
};

TEST(ClusterGatewayTest, ServesEverythingBelowTheAdmittedRate)
{
    Harness h;
    AdmissionOptions admission;
    admission.tokensPerSecond = 200.0;
    admission.bucketCapacity = 100.0;
    const auto s = h.run(admission, 50.0, 4.0);
    EXPECT_GT(s.arrivals, 0);
    EXPECT_EQ(s.shed, 0);
    EXPECT_EQ(s.dropped, 0);
    EXPECT_EQ(s.errors, 0);
    EXPECT_EQ(s.completed, s.arrivals);
    EXPECT_GT(s.p50Us, 0.0);
    EXPECT_LE(s.p50Us, s.p99Us);
    EXPECT_LE(s.p99Us, s.p999Us);
}

TEST(ClusterGatewayTest, TokenBucketShedsAboveTheAdmittedRate)
{
    Harness h;
    AdmissionOptions admission;
    admission.tokensPerSecond = 50.0;
    admission.bucketCapacity = 10.0;
    const auto s = h.run(admission, 400.0, 4.0);
    EXPECT_GT(s.shed, 0);
    EXPECT_EQ(s.arrivals, s.admitted + s.shed + s.dropped);
    EXPECT_EQ(s.admitted, s.completed + s.errors);
    // Admitted rate hugs the bucket rate (plus the initial burst).
    EXPECT_NEAR(double(s.admitted), 50.0 * 4.0 + 10.0,
                0.15 * double(s.admitted));
}

TEST(ClusterGatewayTest, UnlimitedBucketNeverSheds)
{
    Harness h;
    AdmissionOptions admission;
    admission.tokensPerSecond = 0.0; // disabled
    const auto s = h.run(admission, 300.0, 2.0);
    EXPECT_EQ(s.shed, 0);
    EXPECT_EQ(s.completed + s.errors, s.arrivals);
}

TEST(ClusterGatewayTest, BoundedQueueDropsNewestWhenFull)
{
    Harness h;
    AdmissionOptions admission;
    admission.maxOutstandingPerNode = 1;
    admission.queueCapacity = 4;
    admission.dropPolicy = DropPolicy::DropNewest;
    const auto s = h.run(admission, 400.0, 2.0);
    EXPECT_GT(s.dropped, 0);
    EXPECT_LE(s.queueMaxDepth, 4);
    EXPECT_EQ(s.arrivals, s.admitted + s.shed + s.dropped);
    EXPECT_EQ(s.admitted, s.completed + s.errors);
}

TEST(ClusterGatewayTest, DropOldestEvictsButStillServesTheBound)
{
    Harness h;
    AdmissionOptions admission;
    admission.maxOutstandingPerNode = 1;
    admission.queueCapacity = 4;
    admission.dropPolicy = DropPolicy::DropOldest;
    const auto s = h.run(admission, 400.0, 2.0);
    EXPECT_GT(s.dropped, 0);
    EXPECT_LE(s.queueMaxDepth, 4);
    EXPECT_EQ(s.arrivals, s.admitted + s.shed + s.dropped);
}

TEST(ClusterGatewayTest, QueueWaitShowsUpInTheScoreboard)
{
    Harness h;
    AdmissionOptions admission;
    admission.maxOutstandingPerNode = 1;
    admission.queueCapacity = 256;
    const auto s = h.run(admission, 200.0, 2.0);
    EXPECT_GT(s.queueMaxDepth, 0);
    EXPECT_GT(s.queueWaitP99Us, 0.0);
}

TEST(ClusterGatewayTest, DigestsReproduceAcrossIdenticalRuns)
{
    auto digest = [](std::uint64_t seed) {
        Harness h(2, seed);
        AdmissionOptions admission;
        admission.tokensPerSecond = 100.0;
        h.run(admission, 150.0, 2.0, seed);
        return h.stats.digest();
    };
    EXPECT_EQ(digest(42), digest(42));
    EXPECT_NE(digest(42), digest(43));
}

TEST(ClusterGatewayTest, UtilizationIsChargedPerPu)
{
    Harness h;
    AdmissionOptions admission;
    const auto s = h.run(admission, 100.0, 2.0);
    ASSERT_FALSE(s.utilization.empty());
    double total = 0.0;
    for (const auto &u : s.utilization) {
        EXPECT_GE(u.node, 0);
        EXPECT_LT(u.node, h.fleet.size());
        total += u.utilization;
    }
    EXPECT_GT(total, 0.0);
}

} // namespace
