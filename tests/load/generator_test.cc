/**
 * @file
 * OpenLoopGenerator: stream contracts (monotonic bounded instants,
 * bit-exact replay), arrival-process statistics (Poisson rate, MMPP
 * uplift, diurnal modulation), Zipf skew, tenant mix, and DES replay
 * through load::drive.
 */

#include "load/generator.hh"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "sim/simulation.hh"

namespace {

using namespace molecule;
using load::Arrival;
using load::ArrivalKind;
using load::OpenLoopGenerator;
using load::TraceSpec;
using sim::SimTime;

TraceSpec
baseSpec(ArrivalKind kind = ArrivalKind::Poisson)
{
    TraceSpec spec;
    spec.seed = 7;
    spec.ratePerSecond = 2000.0;
    spec.duration = SimTime::fromSeconds(20);
    spec.arrival = kind;
    spec.functions = {"f0", "f1", "f2", "f3", "f4", "f5"};
    return spec;
}

TEST(OpenLoopGeneratorTest, InstantsAreMonotonicAndBounded)
{
    OpenLoopGenerator gen(baseSpec());
    Arrival a;
    SimTime last(0);
    while (gen.next(a)) {
        EXPECT_GE(a.at, last);
        EXPECT_LT(a.at, gen.spec().duration);
        EXPECT_LT(a.fn, gen.spec().functions.size());
        last = a.at;
    }
    EXPECT_GT(gen.emitted(), 0u);
}

TEST(OpenLoopGeneratorTest, ResetReplaysBitForBit)
{
    OpenLoopGenerator gen(baseSpec(ArrivalKind::Mmpp));
    const auto first = gen.generate();
    gen.reset();
    const auto second = gen.generate();
    ASSERT_EQ(first.size(), second.size());
    EXPECT_TRUE(first == second);
}

TEST(OpenLoopGeneratorTest, TwoGeneratorsFromOneSpecAgree)
{
    const TraceSpec spec = baseSpec(ArrivalKind::Diurnal);
    EXPECT_EQ(load::streamDigest(spec), load::streamDigest(spec));
    OpenLoopGenerator a(spec), b(spec);
    EXPECT_TRUE(a.generate() == b.generate());
}

TEST(OpenLoopGeneratorTest, DifferentSeedsDiverge)
{
    TraceSpec a = baseSpec(), b = baseSpec();
    b.seed = a.seed + 1;
    EXPECT_NE(load::streamDigest(a), load::streamDigest(b));
}

TEST(OpenLoopGeneratorTest, PoissonHitsTheMeanRate)
{
    const TraceSpec spec = baseSpec();
    OpenLoopGenerator gen(spec);
    Arrival a;
    std::uint64_t n = 0;
    while (gen.next(a))
        ++n;
    const double expected = spec.expectedArrivals();
    // 40k arrivals: +-5% catches a wrong-by-a-factor bug, not noise.
    EXPECT_NEAR(double(n), expected, expected * 0.05);
}

TEST(OpenLoopGeneratorTest, MmppUpliftsTheArrivalCount)
{
    TraceSpec mmpp = baseSpec(ArrivalKind::Mmpp);
    mmpp.burstFactor = 8.0;
    mmpp.meanDwellBase = SimTime::fromSeconds(5);
    mmpp.meanDwellBurst = SimTime::fromSeconds(1);
    OpenLoopGenerator gen(mmpp);
    Arrival a;
    std::uint64_t n = 0;
    while (gen.next(a))
        ++n;
    // Time-weighted rate is (5/6 + 8/6) x base; dwell sampling is
    // noisy over a 20 s horizon, so only require a clear uplift over
    // plain Poisson and a count below the all-burst ceiling.
    const double base = mmpp.ratePerSecond *
                        mmpp.duration.toSeconds();
    EXPECT_GT(double(n), base * 1.3);
    EXPECT_LT(double(n), base * 8.0);
}

TEST(OpenLoopGeneratorTest, MmppDegenerateDwellsCollapseToPoisson)
{
    TraceSpec mmpp = baseSpec(ArrivalKind::Mmpp);
    mmpp.meanDwellBase = SimTime(0);
    TraceSpec poisson = baseSpec(ArrivalKind::Poisson);
    OpenLoopGenerator a(mmpp), b(poisson);
    EXPECT_TRUE(a.generate() == b.generate());
}

TEST(OpenLoopGeneratorTest, DiurnalModulatesWithinThePeriod)
{
    TraceSpec spec = baseSpec(ArrivalKind::Diurnal);
    spec.diurnalAmplitude = 0.9;
    spec.diurnalPeriod = spec.duration; // one full day per stream
    OpenLoopGenerator gen(spec);
    Arrival a;
    // First half of the sinusoid is the peak, second the trough.
    std::uint64_t firstHalf = 0, secondHalf = 0;
    const SimTime mid = spec.duration / 2;
    while (gen.next(a))
        (a.at < mid ? firstHalf : secondHalf)++;
    EXPECT_GT(double(firstHalf), double(secondHalf) * 1.5);
}

TEST(OpenLoopGeneratorTest, ZipfSkewsTheFunctionPopularity)
{
    TraceSpec spec = baseSpec();
    spec.tenants = {{"t", 1.0, 1.4, 0}};
    OpenLoopGenerator gen(spec);
    Arrival a;
    std::map<std::uint32_t, std::uint64_t> byFn;
    while (gen.next(a))
        byFn[a.fn]++;
    std::vector<std::uint64_t> counts;
    for (const auto &[fn, n] : byFn)
        counts.push_back(n);
    ASSERT_EQ(counts.size(), spec.functions.size());
    std::sort(counts.begin(), counts.end());
    // Rank-1 vs rank-2 ratio for s=1.4 is 2^1.4 ~ 2.6; demand at
    // least 2x to leave sampling noise room, and a long tail.
    EXPECT_GT(double(counts[counts.size() - 1]),
              2.0 * double(counts[counts.size() - 2]));
    EXPECT_GT(counts.front(), 0u);
}

TEST(OpenLoopGeneratorTest, TenantSharesSplitTheStream)
{
    TraceSpec spec = baseSpec();
    spec.tenants = {
        {"alpha", 3.0, 1.1, 1},
        {"beta", 1.0, 1.1, 2},
    };
    OpenLoopGenerator gen(spec);
    Arrival a;
    std::uint64_t alpha = 0, beta = 0;
    while (gen.next(a))
        (a.tenant == 0 ? alpha : beta)++;
    const double total = double(alpha + beta);
    EXPECT_NEAR(double(alpha) / total, 0.75, 0.02);
}

TEST(OpenLoopGeneratorTest, TenantSaltsPermuteThePopularity)
{
    // Same mix, different salts: the hot function must differ for at
    // least one pair of tenants somewhere in the seed space.
    TraceSpec spec = baseSpec();
    spec.tenants = {
        {"alpha", 1.0, 1.4, 1},
        {"beta", 1.0, 1.4, 2},
    };
    OpenLoopGenerator gen(spec);
    Arrival a;
    std::map<std::uint32_t, std::uint64_t> alphaByFn, betaByFn;
    while (gen.next(a))
        (a.tenant == 0 ? alphaByFn : betaByFn)[a.fn]++;
    auto hot = [](const std::map<std::uint32_t, std::uint64_t> &m) {
        std::uint32_t best = 0;
        std::uint64_t n = 0;
        for (const auto &[fn, c] : m)
            if (c > n) {
                n = c;
                best = fn;
            }
        return best;
    };
    EXPECT_NE(hot(alphaByFn), hot(betaByFn));
}

TEST(OpenLoopGeneratorTest, EmptySpecsProduceNothing)
{
    TraceSpec zeroRate = baseSpec();
    zeroRate.ratePerSecond = 0.0;
    OpenLoopGenerator gen(zeroRate);
    Arrival a;
    EXPECT_FALSE(gen.next(a));
    EXPECT_EQ(gen.emitted(), 0u);

    TraceSpec zeroDur = baseSpec();
    zeroDur.duration = SimTime(0);
    OpenLoopGenerator gen2(zeroDur);
    EXPECT_FALSE(gen2.next(a));
}

TEST(OpenLoopGeneratorTest, NoFunctionsMeansIndexZero)
{
    TraceSpec spec = baseSpec();
    spec.functions.clear();
    spec.duration = SimTime::fromSeconds(1);
    OpenLoopGenerator gen(spec);
    Arrival a;
    while (gen.next(a))
        EXPECT_EQ(a.fn, 0u);
}

/** Sink recording (sim time, arrival) pairs. */
struct Recorder final : load::ArrivalSink
{
    sim::Simulation &sim;
    std::vector<std::pair<SimTime, Arrival>> seen;

    explicit Recorder(sim::Simulation &s) : sim(s) {}

    void
    onArrival(const Arrival &a) override
    {
        seen.emplace_back(sim.now(), a);
    }
};

TEST(DriveTest, DeliversEveryArrivalAtItsInstant)
{
    TraceSpec spec = baseSpec();
    spec.duration = SimTime::fromSeconds(2);
    OpenLoopGenerator expected(spec);
    const auto stream = expected.generate();

    sim::Simulation sim;
    OpenLoopGenerator gen(spec);
    Recorder recorder(sim);
    sim.spawn(load::drive(sim, gen, recorder));
    sim.run();

    ASSERT_EQ(recorder.seen.size(), stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(recorder.seen[i].first, stream[i].at);
        EXPECT_EQ(recorder.seen[i].second.at, stream[i].at);
        EXPECT_EQ(recorder.seen[i].second.fn, stream[i].fn);
    }
}

TEST(DriveTest, RebasesOntoTheCurrentClock)
{
    TraceSpec spec = baseSpec();
    spec.duration = SimTime::fromSeconds(1);
    OpenLoopGenerator reference(spec);
    const auto stream = reference.generate();

    sim::Simulation sim;
    const SimTime skew = SimTime::fromSeconds(3);
    OpenLoopGenerator gen(spec);
    Recorder recorder(sim);
    sim.spawn([](sim::Simulation &s, OpenLoopGenerator &g,
                 Recorder &r, SimTime delay) -> sim::Task<> {
        co_await s.delay(delay);
        co_await load::drive(s, g, r);
    }(sim, gen, recorder, skew));
    sim.run();

    ASSERT_EQ(recorder.seen.size(), stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i)
        EXPECT_EQ(recorder.seen[i].second.at, skew + stream[i].at);
}

} // namespace
