/**
 * @file
 * TraceSpec: serialization round-trips, parse errors, sizing hints.
 */

#include "load/spec.hh"

#include <gtest/gtest.h>

namespace {

using namespace molecule;
using load::ArrivalKind;
using load::TenantSpec;
using load::TraceSpec;
using sim::SimTime;

TraceSpec
fullSpec()
{
    TraceSpec spec;
    spec.seed = 977;
    spec.duration = SimTime::fromSeconds(12.5);
    spec.ratePerSecond = 831.25;
    spec.arrival = ArrivalKind::Mmpp;
    spec.burstFactor = 5.5;
    spec.meanDwellBase = SimTime::fromSeconds(2.25);
    spec.meanDwellBurst = SimTime::milliseconds(320);
    spec.diurnalAmplitude = 0.375;
    spec.diurnalPeriod = SimTime::fromSeconds(30);
    spec.functions = {"helloworld", "pyaes", "dd"};
    spec.tenants = {
        {"alpha", 3.0, 1.1, 17},
        {"beta", 1.0, 0.8, 99},
    };
    return spec;
}

TEST(TraceSpecTest, RoundTripsExactly)
{
    const TraceSpec spec = fullSpec();
    const auto parsed = TraceSpec::parse(spec.serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.error().detail();
    EXPECT_TRUE(parsed.value() == spec);
}

TEST(TraceSpecTest, DefaultSpecRoundTrips)
{
    const TraceSpec spec;
    const auto parsed = TraceSpec::parse(spec.serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value() == spec);
}

TEST(TraceSpecTest, RoundTripPreservesAwkwardDoubles)
{
    TraceSpec spec;
    spec.ratePerSecond = 1.0 / 3.0;
    spec.burstFactor = 0.1 + 0.2; // not exactly 0.3
    spec.diurnalAmplitude = 1e-17;
    const auto parsed = TraceSpec::parse(spec.serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().ratePerSecond, spec.ratePerSecond);
    EXPECT_EQ(parsed.value().burstFactor, spec.burstFactor);
    EXPECT_EQ(parsed.value().diurnalAmplitude, spec.diurnalAmplitude);
}

TEST(TraceSpecTest, ParseRejectsGarbage)
{
    EXPECT_FALSE(TraceSpec::parse("").ok());
    EXPECT_FALSE(TraceSpec::parse("not a spec").ok());
    EXPECT_FALSE(TraceSpec::parse("trace-spec v2 seed=1").ok());
}

TEST(TraceSpecTest, ParseRejectsUnknownLinesAndKeys)
{
    const std::string good = TraceSpec{}.serialize();
    EXPECT_FALSE(TraceSpec::parse(good + "wat name=x\n").ok());
    EXPECT_FALSE(TraceSpec::parse(good + "fn color=red\n").ok());
}

TEST(TraceSpecTest, ParseErrorCarriesInvalidArgument)
{
    const auto parsed = TraceSpec::parse("bogus");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), core::Errc::InvalidArgument);
}

TEST(TraceSpecTest, ExpectedArrivalsTracksRateAndDuration)
{
    TraceSpec spec;
    spec.ratePerSecond = 100.0;
    spec.duration = SimTime::fromSeconds(10);
    spec.arrival = ArrivalKind::Poisson;
    EXPECT_NEAR(spec.expectedArrivals(), 1000.0, 1e-9);
}

TEST(TraceSpecTest, ExpectedArrivalsCountsMmppUplift)
{
    TraceSpec spec;
    spec.ratePerSecond = 100.0;
    spec.duration = SimTime::fromSeconds(10);
    spec.arrival = ArrivalKind::Mmpp;
    spec.burstFactor = 8.0;
    // Burst dwell occupies 1/6 of the time at 8x the base rate.
    spec.meanDwellBase = SimTime::fromSeconds(5);
    spec.meanDwellBurst = SimTime::fromSeconds(1);
    const double expected =
        1000.0 * (5.0 / 6.0 + (1.0 / 6.0) * 8.0);
    EXPECT_NEAR(spec.expectedArrivals(), expected, 1e-6);
}

TEST(TraceSpecTest, ArrivalKindNamesRoundTripThroughSerialize)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                             ArrivalKind::Diurnal}) {
        TraceSpec spec;
        spec.arrival = kind;
        const auto parsed = TraceSpec::parse(spec.serialize());
        ASSERT_TRUE(parsed.ok()) << load::toString(kind);
        EXPECT_EQ(parsed.value().arrival, kind);
    }
}

} // namespace
